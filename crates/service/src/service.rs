//! The sharded query service: worker-pool orchestration, request
//! admission (reads *and* online writes) and top-k merging.
//!
//! Queries fan out to every shard's worker pool; inserts and deletes
//! route to the owning shard's single writer thread, which applies them
//! through the storage crate's `Updater` and invalidates exactly the
//! rewritten blocks in the shard's DRAM cache (see
//! [`crate::update`]). Both kinds flow through one admission discipline
//! ([`Load`]) and one op stream, so a mixed workload's read latency
//! degradation under writes is measured end to end.

use crate::loadgen::{poisson_arrivals, Load, Op};
use crate::metrics::LatencySummary;
use crate::shard::{Shard, ShardSet};
use crate::shared_sim::SharedSimArray;
use crate::update::{run_writer, WriteJob, WriteKind};
use crate::worker::{run_worker, sleep_until, Job, WorkerCtx, WorkerMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::CachedDevice;
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::layout::BLOCK_SIZE;
use e2lsh_storage::query::EngineConfig;
use std::sync::Arc;
use std::time::Instant;

/// What device each worker drives.
#[derive(Clone, Copy, Debug)]
pub enum DeviceSpec {
    /// Real positioned reads against the shard's index file through a
    /// per-worker reader-thread pool (wall clock).
    File {
        /// Reader threads per worker (OS-visible queue depth).
        io_workers: usize,
    },
    /// A private simulated array per worker — aggregate device bandwidth
    /// scales with the worker count (models "one drive per worker").
    SimPerWorker {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in each worker's array.
        num_devices: usize,
    },
    /// One simulated array per shard, shared by all of the shard's
    /// workers — workers contend for the array's total IOPS, the paper's
    /// Figure 16 regime.
    SimShared {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in the shard's array.
        num_devices: usize,
    },
}

impl DeviceSpec {
    fn is_sim(&self) -> bool {
        matches!(
            self,
            DeviceSpec::SimPerWorker { .. } | DeviceSpec::SimShared { .. }
        )
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Interleaved queries per worker (engine contexts).
    pub contexts_per_worker: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)` per shard).
    pub s_override: Option<usize>,
    /// Device each worker drives.
    pub device: DeviceSpec,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            contexts_per_worker: 16,
            k: 1,
            s_override: None,
            device: DeviceSpec::File { io_workers: 4 },
        }
    }
}

impl ServiceConfig {
    fn engine(&self) -> EngineConfig {
        let mut e = EngineConfig::wall_clock(self.k);
        e.contexts = self.contexts_per_worker.max(1);
        e.s_override = self.s_override;
        e
    }
}

/// Aggregate results of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Merged global top-k per query, distance ascending.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-query latency in seconds (dispatch→last shard for closed
    /// loop, scheduled arrival→last shard for open loop).
    pub latencies: Vec<f64>,
    /// Per-write latency in seconds (insert/delete dispatch or
    /// scheduled arrival → applied), in completion order. Failed
    /// writes are excluded — they count in
    /// [`ServiceReport::writes_failed`]. Empty for read-only runs.
    pub write_latencies: Vec<f64>,
    /// Writes whose updater returned an error (the shard stays
    /// queryable; rewritten blocks were still invalidated).
    pub writes_failed: usize,
    /// Seconds from service epoch to the last completion.
    pub duration: f64,
    /// Device statistics summed over workers (shared arrays counted
    /// once; cache counters — including invalidations and discarded
    /// stale fills — are per-run deltas over the shard caches).
    pub device: DeviceStats,
    /// Total I/Os issued across shards.
    pub total_io: u64,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl ServiceReport {
    /// Completed queries per second.
    pub fn qps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.duration
        }
    }

    /// Applied writes per second (0 for read-only runs).
    pub fn wps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.write_latencies.len() as f64 / self.duration
        }
    }

    /// Read-latency percentiles.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of(&self.latencies)
    }

    /// Write-latency percentiles (all zeros for read-only runs).
    pub fn write_latency(&self) -> LatencySummary {
        LatencySummary::of(&self.write_latencies)
    }

    /// Mean I/Os per query (summed over shards).
    pub fn mean_n_io(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_io as f64 / self.results.len() as f64
        }
    }
}

/// Per-query accumulation while shard partials trickle in.
struct Accum {
    remaining: usize,
    neighbors: Vec<(u32, f32)>,
    finish: f64,
}

/// The sharded, multi-threaded E2LSHoS query service.
pub struct ShardedService {
    shards: ShardSet,
    config: ServiceConfig,
}

impl ShardedService {
    /// Serve `shards` with `config`.
    pub fn new(shards: ShardSet, config: ServiceConfig) -> Self {
        assert!(config.workers_per_shard >= 1);
        assert!(config.k >= 1);
        Self { shards, config }
    }

    /// The shard set.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run `queries` through the service under the given admission
    /// discipline; blocks until every query completes. Read-only
    /// shorthand for [`ShardedService::serve_mixed`].
    pub fn serve(&self, queries: &Dataset, load: Load) -> ServiceReport {
        let ops: Vec<Op> = (0..queries.len()).map(Op::Query).collect();
        let no_inserts = Dataset::with_capacity(queries.dim().max(1), 0);
        self.serve_mixed(queries, &no_inserts, &ops, load)
    }

    /// Run a mixed read–write op stream through the service; blocks
    /// until every op completes.
    ///
    /// `ops` references `queries` (each `Op::Query(i)` must appear
    /// exactly once for `i < queries.len()`) and `inserts`
    /// (`Op::Insert(j)` consumes pool point `j`, in ascending order —
    /// the `j`-th insert receives the next unassigned global id, i.e.
    /// build-time total + inserts applied by earlier runs + `j`, and is
    /// routed round-robin over the shards). `Op::Delete(g)` must target
    /// an id that is live at its position in the stream.
    /// [`crate::loadgen::mixed_ops`] generates conforming streams (use
    /// [`crate::loadgen::mixed_ops_resuming`] for follow-up runs on a
    /// mutated service).
    ///
    /// Queries fan out to every shard's worker pool; writes go to the
    /// owning shard's writer thread (one per shard — the shard write
    /// lock), which applies them through the storage updater,
    /// invalidates exactly the rewritten cache blocks and publishes new
    /// occupancy-filter bits into the live index. Under [`Load::Closed`]
    /// the window counts in-flight ops of both kinds; under
    /// [`Load::Open`] all ops share one Poisson arrival process.
    pub fn serve_mixed(
        &self,
        queries: &Dataset,
        inserts: &Dataset,
        ops: &[Op],
        load: Load,
    ) -> ServiceReport {
        assert_eq!(queries.dim(), self.shards.dim(), "query dimensionality");
        let num_shards = self.shards.num_shards();
        let workers_total = num_shards * self.config.workers_per_shard;
        let num_queries = ops.iter().filter(|op| matches!(op, Op::Query(_))).count();
        assert_eq!(
            num_queries,
            queries.len(),
            "ops must cover each query exactly once"
        );
        let has_writes = ops.len() > num_queries;
        if has_writes {
            assert_eq!(inserts.dim(), self.shards.dim(), "insert dimensionality");
        }
        // Validate write ops up front: a bad op would panic inside a
        // shard writer thread, and a dead writer starves the collector
        // of WriteDone messages — a silent hang instead of a loud
        // failure here. Checks: insert indices are dense and ascending
        // (the dispatcher assigns global ids as `insert_base + j`) and
        // fit the pool; deletes target ids assigned before them in the
        // stream (per-shard FIFO then guarantees delete-after-insert);
        // and each shard's growth fits the id space its index codec was
        // built with.
        {
            let insert_base = self.insert_base();
            let mut assigned = insert_base;
            let mut expected_insert = 0usize;
            let mut new_rows = vec![0usize; num_shards];
            for op in ops {
                match *op {
                    Op::Query(_) => {}
                    Op::Insert(j) => {
                        assert_eq!(
                            j, expected_insert,
                            "insert indices must be dense and ascending"
                        );
                        new_rows[self.shards.plan().shard_of_any(assigned)] += 1;
                        expected_insert += 1;
                        assigned += 1;
                    }
                    Op::Delete(g) => {
                        assert!(
                            (g as usize) < assigned,
                            "delete of unassigned global id {g} (ids end at {assigned})"
                        );
                    }
                }
            }
            assert!(
                expected_insert <= inserts.len(),
                "ops consume {expected_insert} insert points but the pool holds {}",
                inserts.len()
            );
            for (s, shard) in self.shards.shards().iter().enumerate() {
                let id_space = 1u64 << shard.index.codec().id_bits;
                assert!(
                    (shard.num_rows() + new_rows[s]) as u64 <= id_space,
                    "shard {s}: {} inserts exceed the id space ({id_space} ids) — \
                     build with a larger ShardBuildConfig::capacity",
                    new_rows[s]
                );
            }
        }
        if ops.is_empty() {
            return ServiceReport {
                results: Vec::new(),
                latencies: Vec::new(),
                write_latencies: Vec::new(),
                writes_failed: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }

        let engine = self.config.engine();
        let sim_time = self.config.device.is_sim();
        let epoch = Instant::now();

        // Snapshot cache counters so the report shows per-run deltas even
        // when a warm cache is reused across runs.
        let cache_snapshot: Vec<CacheSnapshot> = self
            .shards
            .shards()
            .iter()
            .map(|s| match &s.cache {
                Some(c) => CacheSnapshot {
                    hits: c.hits(),
                    misses: c.misses(),
                    evictions: c.evictions(),
                    invalidations: c.invalidations(),
                    stale_fills: c.stale_fills(),
                },
                None => CacheSnapshot::default(),
            })
            .collect();

        // One shared simulated array per shard when requested.
        let arrays: Vec<Option<SharedSimArray>> = self
            .shards
            .shards()
            .iter()
            .map(|shard| match self.config.device {
                DeviceSpec::SimShared {
                    profile,
                    num_devices,
                } => {
                    let sim = SimStorage::new(
                        profile,
                        num_devices,
                        Backing::open(&shard.path).expect("open shard index"),
                    );
                    Some(SharedSimArray::new(sim, self.config.workers_per_shard))
                }
                _ => None,
            })
            .collect();

        // Per-shard job queues and the worker/writer→collector channel.
        let channels: Vec<(Sender<Job>, Receiver<Job>)> =
            (0..num_shards).map(|_| unbounded()).collect();
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
        // One writer (and write queue) per shard, only when the stream
        // has writes: the writer owns the shard's read-write updater.
        let write_channels: Vec<(Sender<WriteJob>, Receiver<WriteJob>)> = if has_writes {
            (0..num_shards).map(|_| unbounded()).collect()
        } else {
            Vec::new()
        };

        let mut report: Option<ServiceReport> = None;
        std::thread::scope(|scope| {
            for (s, shard) in self.shards.shards().iter().enumerate() {
                for w in 0..self.config.workers_per_shard {
                    let device = self.make_device(shard, &arrays[s], w);
                    let jobs = channels[s].1.clone();
                    let tx = msg_tx.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        run_worker(
                            WorkerCtx {
                                shard,
                                worker_in_shard: w,
                                queries,
                                engine,
                                sim_time,
                                epoch,
                            },
                            device,
                            jobs,
                            tx,
                        );
                    });
                }
                if has_writes {
                    let jobs = write_channels[s].1.clone();
                    let tx = msg_tx.clone();
                    scope.spawn(move || run_writer(shard, inserts, jobs, tx, epoch));
                }
            }
            drop(msg_tx);
            let job_txs: Vec<Sender<Job>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(channels);
            let write_txs: Vec<Sender<WriteJob>> =
                write_channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(write_channels);

            report = Some(self.drive(
                queries,
                ops,
                load,
                job_txs,
                write_txs,
                msg_rx,
                epoch,
                &cache_snapshot,
            ));
        });
        report.expect("collector ran")
    }

    fn make_device(
        &self,
        shard: &Shard,
        array: &Option<SharedSimArray>,
        worker_in_shard: usize,
    ) -> Box<dyn Device> {
        fn wrap<D: Device + 'static>(dev: D, shard: &Shard) -> Box<dyn Device> {
            match &shard.cache {
                Some(cache) => {
                    Box::new(CachedDevice::new(dev, Arc::clone(cache), BLOCK_SIZE as u32))
                }
                None => Box::new(dev),
            }
        }
        match self.config.device {
            DeviceSpec::File { io_workers } => wrap(
                FileDevice::open(&shard.path, io_workers.max(1)).expect("open shard index"),
                shard,
            ),
            DeviceSpec::SimPerWorker {
                profile,
                num_devices,
            } => wrap(
                SimStorage::new(
                    profile,
                    num_devices,
                    Backing::open(&shard.path).expect("open shard index"),
                ),
                shard,
            ),
            DeviceSpec::SimShared { .. } => wrap(
                array
                    .as_ref()
                    .expect("shared array built")
                    .handle(worker_in_shard),
                shard,
            ),
        }
    }

    /// Next unassigned global id: inserts continue the sequence where
    /// earlier runs left it (build-time total + rows appended so far).
    fn insert_base(&self) -> usize {
        self.shards.plan().base_total()
            + self
                .shards
                .shards()
                .iter()
                .map(|s| s.num_rows() - s.base_len())
                .sum::<usize>()
    }

    /// Route one op: queries fan out to every shard's worker pool,
    /// writes go to the owning shard's writer. The `j`-th insert of the
    /// stream gets global id `insert_base + j` (the generator emits
    /// `Op::Insert(j)` in ascending order; `insert_base` is the
    /// build-time total plus inserts applied by earlier runs), dealt
    /// round-robin per the plan's appended-id arithmetic.
    fn send_op(
        &self,
        op_idx: usize,
        op: Op,
        insert_base: usize,
        job_txs: &[Sender<Job>],
        write_txs: &[Sender<WriteJob>],
    ) {
        match op {
            Op::Query(qid) => {
                for tx in job_txs {
                    tx.send(Job { qid }).expect("workers alive");
                }
            }
            Op::Insert(j) => {
                let global_id = (insert_base + j) as u32;
                let s = self.shards.plan().shard_of_any(global_id as usize);
                write_txs[s]
                    .send(WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Insert { point_idx: j },
                    })
                    .expect("writer alive");
            }
            Op::Delete(global_id) => {
                let s = self.shards.plan().shard_of_any(global_id as usize);
                write_txs[s]
                    .send(WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Delete,
                    })
                    .expect("writer alive");
            }
        }
    }

    /// Dispatch ops per the admission discipline and collect partials /
    /// write completions.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        queries: &Dataset,
        ops: &[Op],
        load: Load,
        job_txs: Vec<Sender<Job>>,
        write_txs: Vec<Sender<WriteJob>>,
        msg_rx: Receiver<WorkerMsg>,
        epoch: Instant,
        cache_snapshot: &[CacheSnapshot],
    ) -> ServiceReport {
        let nq = queries.len();
        let total = ops.len();
        let num_shards = self.shards.num_shards();
        let insert_base = self.insert_base();
        let k = self.config.k;
        // qid → op index, for read-latency reference times.
        let mut query_op = vec![usize::MAX; nq];
        for (i, op) in ops.iter().enumerate() {
            if let Op::Query(qid) = *op {
                assert_eq!(query_op[qid], usize::MAX, "query {qid} appears twice");
                query_op[qid] = i;
            }
        }
        let mut collector = Collector {
            accum: (0..nq)
                .map(|_| Accum {
                    remaining: num_shards,
                    neighbors: Vec::new(),
                    finish: 0.0,
                })
                .collect(),
            results: vec![Vec::new(); nq],
            latencies: vec![0.0f64; nq],
            write_latencies: Vec::new(),
            writes_failed: 0,
            total_io: 0,
            duration: 0.0,
            query_op,
            k,
        };
        let mut ref_time = vec![0.0f64; total]; // dispatch (closed) or arrival (open)
        let mut done = 0usize;

        match load {
            Load::Closed { window } => {
                let window = window.max(1).min(total);
                let mut next = 0usize;
                while next < window {
                    ref_time[next] = epoch.elapsed().as_secs_f64();
                    self.send_op(next, ops[next], insert_base, &job_txs, &write_txs);
                    next += 1;
                }
                while done < total {
                    let msg = msg_rx.recv().expect("workers alive");
                    if collector.absorb(msg, &ref_time) {
                        done += 1;
                        if next < total {
                            ref_time[next] = epoch.elapsed().as_secs_f64();
                            self.send_op(next, ops[next], insert_base, &job_txs, &write_txs);
                            next += 1;
                        }
                    }
                }
            }
            Load::Open { rate_qps, seed } => {
                let arrivals = poisson_arrivals(total, rate_qps, seed);
                ref_time.copy_from_slice(&arrivals);
                let dispatch_job_txs = &job_txs;
                let dispatch_write_txs = &write_txs;
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        for (op_idx, &at) in arrivals.iter().enumerate() {
                            sleep_until(epoch, at);
                            self.send_op(
                                op_idx,
                                ops[op_idx],
                                insert_base,
                                dispatch_job_txs,
                                dispatch_write_txs,
                            );
                        }
                    });
                    while done < total {
                        let msg = msg_rx.recv().expect("workers alive");
                        if collector.absorb(msg, &ref_time) {
                            done += 1;
                        }
                    }
                });
            }
        }

        // Close the queues and aggregate worker statistics.
        drop(job_txs);
        drop(write_txs);
        let mut device = DeviceStats::default();
        while let Ok(msg) = msg_rx.recv() {
            if let WorkerMsg::Done {
                worker_in_shard,
                device: d,
                ..
            } = msg
            {
                // Shared arrays report whole-array stats from every
                // worker: count one handle per shard.
                let shared = matches!(self.config.device, DeviceSpec::SimShared { .. });
                if !shared || worker_in_shard == 0 {
                    device.completed += d.completed;
                    device.bytes += d.bytes;
                    device.latency_sum += d.latency_sum;
                    device.busy_sum += d.busy_sum;
                }
            }
        }
        // Cache counters: per-run deltas over the shard caches (device
        // stats would double count — every worker of a shard shares one
        // cache).
        for (shard, snap) in self.shards.shards().iter().zip(cache_snapshot) {
            if let Some(c) = &shard.cache {
                device.cache_hits += c.hits() - snap.hits;
                device.cache_misses += c.misses() - snap.misses;
                device.cache_evictions += c.evictions() - snap.evictions;
                device.cache_invalidations += c.invalidations() - snap.invalidations;
                device.cache_stale_fills += c.stale_fills() - snap.stale_fills;
            }
        }

        ServiceReport {
            results: collector.results,
            latencies: collector.latencies,
            write_latencies: collector.write_latencies,
            writes_failed: collector.writes_failed,
            duration: collector.duration,
            device,
            total_io: collector.total_io,
            workers: self.shards.num_shards() * self.config.workers_per_shard,
            shards: num_shards,
        }
    }
}

/// Mutable collector state of one service run: merges shard partials
/// into per-query results and books read/write latencies.
struct Collector {
    accum: Vec<Accum>,
    results: Vec<Vec<(u32, f32)>>,
    latencies: Vec<f64>,
    write_latencies: Vec<f64>,
    writes_failed: usize,
    total_io: u64,
    duration: f64,
    /// qid → op index, for read-latency reference times.
    query_op: Vec<usize>,
    k: usize,
}

impl Collector {
    /// Accumulate one message; returns true when it completed an op.
    /// `ref_time[op]` is the op's dispatch (closed loop) or scheduled
    /// arrival (open loop) time.
    fn absorb(&mut self, msg: WorkerMsg, ref_time: &[f64]) -> bool {
        match msg {
            WorkerMsg::Partial {
                qid,
                neighbors,
                n_io,
                finish,
                ..
            } => {
                let a = &mut self.accum[qid];
                debug_assert!(a.remaining > 0, "extra partial for query {qid}");
                a.neighbors.extend(neighbors);
                a.finish = a.finish.max(finish);
                a.remaining -= 1;
                self.total_io += u64::from(n_io);
                if a.remaining == 0 {
                    let mut merged = std::mem::take(&mut a.neighbors);
                    merged.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                    merged.truncate(self.k);
                    let finish = a.finish;
                    self.results[qid] = merged;
                    self.latencies[qid] = finish - ref_time[self.query_op[qid]];
                    self.duration = self.duration.max(finish);
                    true
                } else {
                    false
                }
            }
            WorkerMsg::WriteDone { op_idx, ok, finish } => {
                // Failed writes count toward writes_failed only:
                // wps()/write_latency() report *applied* writes.
                if ok {
                    self.write_latencies.push(finish - ref_time[op_idx]);
                } else {
                    self.writes_failed += 1;
                }
                self.duration = self.duration.max(finish);
                true
            }
            WorkerMsg::Done { .. } => {
                unreachable!("Done before the job queues closed")
            }
        }
    }
}

/// Cache counters at serve start, for per-run deltas.
#[derive(Clone, Copy, Debug, Default)]
struct CacheSnapshot {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    stale_fills: u64,
}
