//! The online write path: per-shard updaters behind the service.
//!
//! A [`ShardUpdater`] applies inserts and deletes to one shard while
//! that shard keeps serving queries. Each operation:
//!
//! 1. **publishes coordinates first** (inserts append to the shard's
//!    locked dataset before any index entry can reference the new id,
//!    so a query can never distance-check a missing row);
//! 2. applies the mutation through the storage crate's
//!    [`Updater`] (read-write file handle, one per shard — the shard
//!    write lock: the service runs one writer thread per shard, so
//!    mutations of a shard are serialized while readers never block);
//! 3. **invalidates exactly the rewritten blocks** in the shard's
//!    [`BlockCache`] using the updater's
//!    [`WriteTrace`](e2lsh_storage::update::WriteTrace) — per-key
//!    epochs in the cache discard in-flight fills for those blocks
//!    only — and mirrors newly set occupancy-filter bits into the live
//!    [`StorageIndex`](e2lsh_storage::index::StorageIndex) so queries
//!    start probing the new buckets.
//!
//! The trace is applied **even when the operation fails** part-way: a
//! failed insert may already have rewritten blocks, and a cache serving
//! their pre-write bytes would be stale (covered by the
//! failure-injection suite).

use crate::shard::Shard;
use e2lsh_storage::device::cached::BlockCache;
use e2lsh_storage::layout::BLOCK_SIZE;
use e2lsh_storage::update::{MaintenanceReport, Updater};
use std::io;
use std::sync::Arc;

/// Read-write handle over one shard for online maintenance, safe to use
/// while the shard serves queries (one `ShardUpdater` per shard at a
/// time — the service's per-shard writer thread owns it).
///
/// With replica groups every replica of the shard owns a private block
/// cache over the same index file; a write must invalidate the
/// rewritten blocks in **all** of them or a sibling replica would keep
/// serving pre-write bytes. [`ShardUpdater::open`] registers the
/// shard's own cache; [`ShardUpdater::mirror_cache`] adds each
/// additional replica's (the service writer wires every topology cache
/// in).
pub struct ShardUpdater<'a> {
    shard: &'a Shard,
    updater: Updater,
    /// Every cache serving this shard's blocks (one per replica).
    caches: Vec<Arc<BlockCache>>,
    /// Blocks the most recent write rewrote (and invalidated in every
    /// registered cache) — the write's "device work" for trace spans.
    last_blocks: u64,
    /// Bucket blocks the most recent op returned to the free list.
    last_blocks_freed: u64,
    /// Chains the most recent delete found the victim missing from
    /// (0 on a healthy index; see
    /// [`WriteTrace::chain_inconsistencies`](e2lsh_storage::update::WriteTrace::chain_inconsistencies)).
    last_inconsistencies: u64,
}

impl<'a> ShardUpdater<'a> {
    /// Open the shard's index file for updates.
    ///
    /// Reconciles the on-storage object count with the shard's row
    /// count: a failed insert burns its id but flushes the burn
    /// best-effort, so after an unlucky double failure the storage
    /// count can lag the (authoritative) dataset mirror — resuming id
    /// assignment from the stale count would desynchronize every later
    /// local↔global mapping on the shard.
    pub fn open(shard: &'a Shard) -> io::Result<Self> {
        let mut updater = Updater::open(&shard.path)?;
        let rows = shard.data.read().unwrap().len();
        updater.reconcile_len(rows)?;
        // Maintenance chain scans may serve block reads from the
        // shard's cache (peek-only: no promotion, no frequency-sketch
        // traffic), saving device reads without polluting the
        // replacement state queries depend on.
        updater.set_scan_cache(shard.cache.clone());
        Ok(Self {
            updater,
            shard,
            caches: shard.cache.iter().cloned().collect(),
            last_blocks: 0,
            last_blocks_freed: 0,
            last_inconsistencies: 0,
        })
    }

    /// Blocks rewritten (hence invalidated) by the most recent
    /// `insert`/`delete` on this updater.
    pub fn last_write_blocks(&self) -> u64 {
        self.last_blocks
    }

    /// Bucket blocks the most recent `insert`/`delete`/`maintain`
    /// returned to the shard's free list (delete-time empty-block
    /// unlink, or compaction).
    pub fn last_blocks_freed(&self) -> u64 {
        self.last_blocks_freed
    }

    /// Chains the most recent `delete` found its victim missing from —
    /// 0 on a healthy index, `> 0` means the shard index was already
    /// inconsistent (the delete still removed what it found).
    pub fn last_chain_inconsistencies(&self) -> u64 {
        self.last_inconsistencies
    }

    /// The shard this updater mutates.
    pub fn shard(&self) -> &Shard {
        self.shard
    }

    /// Register another cache serving this shard's blocks (a sibling
    /// replica's private cache): every write will invalidate its
    /// rewritten blocks there too. Caches already registered (by
    /// pointer identity) are skipped, so passing the whole topology's
    /// cache list is safe.
    pub fn mirror_cache(&mut self, cache: Arc<BlockCache>) {
        if !self.caches.iter().any(|c| Arc::ptr_eq(c, &cache)) {
            self.caches.push(cache);
        }
    }

    /// Fault injection passthrough for tests (see
    /// [`Updater::fail_after_writes`]).
    pub fn fail_after_writes(&mut self, n: Option<u64>) {
        self.updater.fail_after_writes(n);
    }

    /// Insert a point into this shard; returns its **global** id.
    ///
    /// The coordinates become visible to the shard's query workers
    /// before any index entry references them, so the insert is
    /// race-free against concurrent reads; it becomes *findable* once
    /// the index entries and filter bits land (when this call returns).
    ///
    /// On error the id and its dataset row are still consumed — the
    /// storage updater burns failed ids (entries may half-exist in some
    /// tables), so popping the row would desynchronize every later
    /// local↔global mapping on this shard. The failed object is at
    /// worst partially findable with correct coordinates, never wrong.
    pub fn insert(&mut self, point: &[f32]) -> io::Result<u32> {
        let local = {
            let mut data = self.shard.data.write().unwrap();
            data.push(point);
            (data.len() - 1) as u32
        };
        let res = self.updater.insert(point);
        self.apply_trace();
        let id = res?;
        debug_assert_eq!(id, local, "updater and dataset disagree on local id");
        Ok(self.shard.to_global(local))
    }

    /// Remove the object with the given **global** id from this shard's
    /// index. Returns the number of chain entries removed. The
    /// coordinates stay in the dataset (in-flight queries may still
    /// distance-check them); with its entries gone the id stops
    /// appearing in results of queries admitted after this returns.
    pub fn delete(&mut self, global_id: u32) -> io::Result<usize> {
        let local = self.shard.local_of(global_id);
        let point = {
            let data = self.shard.data.read().unwrap();
            data.point(local as usize).to_vec()
        };
        let res = self.updater.delete(&point, local);
        self.apply_trace();
        res
    }

    /// Run one budgeted space-reclamation tick on this shard (see
    /// [`Updater::maintain`]): unlink emptied blocks, merge sparse
    /// chain blocks, and clear occupancy-filter bits whose buckets hold
    /// no live entries. Safe while the shard serves queries:
    ///
    /// * filter-bit **clears** are published into the live
    ///   [`StorageIndex`](e2lsh_storage::index::StorageIndex) word
    ///   stores (the set-bit path used by inserts is OR-only, so clears
    ///   need the exact rescanned words) — a query admitted mid-store
    ///   at worst probes a bucket that just went empty;
    /// * rewritten chain blocks are invalidated in every replica cache
    ///   through the same write trace as inserts/deletes, so the
    ///   per-key cache epochs discard in-flight fills for them.
    pub fn maintain(&mut self, block_budget: usize) -> io::Result<MaintenanceReport> {
        let res = self.updater.maintain(block_budget);
        if let Ok(rep) = &res {
            for &(ri, li, word, value) in &rep.filter_words {
                self.shard.index.set_filter_word(ri, li, word, value);
            }
        }
        self.apply_trace();
        res
    }

    /// Invalidate rewritten blocks in **every** registered replica
    /// cache and publish new filter bits into the live index — also on
    /// failure (see module docs). The index and rows are shared by all
    /// replicas, so this is the only per-replica publication a write
    /// needs.
    fn apply_trace(&mut self) {
        let trace = self.updater.take_trace();
        self.last_blocks = trace.blocks.len() as u64;
        self.last_blocks_freed = trace.blocks_freed;
        self.last_inconsistencies = trace.chain_inconsistencies;
        for &(ri, li, h32) in &trace.filter_bits {
            self.shard.index.set_filter_bit(ri, li, h32);
        }
        for cache in &self.caches {
            for &addr in &trace.blocks {
                cache.invalidate(addr / BLOCK_SIZE as u64);
            }
        }
    }
}
