//! Machine-readable metrics export: a [`MetricsRegistry`] snapshot of a
//! [`ServiceReport`] serialized to a stable JSON schema.
//!
//! The schema (version [`SCHEMA_VERSION`]) has five top-level keys:
//!
//! * `schema_version` — integer, bumped on any breaking layout change;
//! * `counters` — monotonic integer totals (completed / shed / failed
//!   ops, failovers, device and cache counters);
//! * `gauges` — derived floating-point rates and ratios (qps, goodput,
//!   shed rate, replica imbalance, device utilization);
//! * `histograms` — one five-number summary per latency stage
//!   (`{count, mean, p50, p95, p99, max}`, seconds), for reads and
//!   writes: end-to-end, service, and queue wait;
//! * `slow_queries` — the retained slow-query log as full span
//!   breakdowns (see [`crate::trace`]).
//!
//! Plus `replica_load`, the `[shard][replica]` served-query matrix
//! behind the imbalance gauge. The bench bins write one such document
//! per run as `results/BENCH_<name>.json`; `bench`'s `schema_check`
//! binary parses them back (vendored `serde_json::from_str`) and
//! asserts the required keys.

use crate::metrics::LatencySummary;
use crate::service::ServiceReport;
use crate::trace::{ShardSpan, SpanKind, TraceSpan};
use serde::Serialize;

/// Version of the export schema. Bump on breaking changes.
/// v2: cache-policy counters (`cache_admission_rejected`, per-region
/// hit/miss counts, `coalesced_reads`).
/// v3: net-tier counters (`connections_accepted/dropped/peak`,
/// `frames_in/out`, `frame_decode_errors`, `tickets_orphaned`) and the
/// `net_ingress` stage on exported spans. The net counters are always
/// present — zero for in-process-only runs.
pub const SCHEMA_VERSION: u64 = 3;

/// A named, ordered snapshot of one [`ServiceReport`]'s metrics,
/// ready to serialize. Build with [`MetricsRegistry::from_report`];
/// the registry borrows nothing, so it outlives the report.
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, LatencySummary)>,
    replica_load: Vec<Vec<u64>>,
    slow_queries: Vec<TraceSpan>,
}

impl MetricsRegistry {
    /// Snapshot every counter, gauge and per-stage histogram summary of
    /// `report` under its stable export name.
    pub fn from_report(report: &ServiceReport) -> Self {
        let d = &report.device;
        let counters: Vec<(&'static str, u64)> = vec![
            ("completed_queries", report.completed_queries as u64),
            ("shed_queries", report.shed_queries as u64),
            ("writes_applied", report.writes_applied as u64),
            ("writes_failed", report.writes_failed as u64),
            ("shed_writes", report.shed_writes as u64),
            ("retries", report.retries as u64),
            ("failovers", report.failovers as u64),
            ("lost_partials", report.lost_partials as u64),
            ("peak_queue_depth", report.peak_queue_depth as u64),
            ("total_io", report.total_io),
            ("workers", report.workers as u64),
            ("shards", report.shards as u64),
            ("replicas", report.replicas as u64),
            ("device_completed", d.completed),
            ("device_bytes", d.bytes),
            ("cache_hits", d.cache_hits),
            ("cache_misses", d.cache_misses),
            ("cache_evictions", d.cache_evictions),
            ("cache_invalidations", d.cache_invalidations),
            ("cache_stale_fills", d.cache_stale_fills),
            ("cache_warmed", d.cache_warmed),
            ("cache_admission_rejected", d.cache_admission_rejected),
            ("cache_table_hits", d.cache_table_hits),
            ("cache_table_misses", d.cache_table_misses),
            ("cache_bucket_hits", d.cache_bucket_hits),
            ("cache_bucket_misses", d.cache_bucket_misses),
            ("coalesced_reads", d.coalesced_reads),
            ("blocks_reclaimed", d.blocks_reclaimed),
            ("filter_bits_cleared", d.filter_bits_cleared),
            ("bytes_reclaimed", d.bytes_reclaimed),
            ("chain_inconsistencies", d.chain_inconsistencies),
            ("connections_accepted", report.net.connections_accepted),
            ("connections_dropped", report.net.connections_dropped),
            ("connections_peak", report.net.connections_peak),
            ("frames_in", report.net.frames_in),
            ("frames_out", report.net.frames_out),
            ("frame_decode_errors", report.net.frame_decode_errors),
            ("tickets_orphaned", report.net.tickets_orphaned),
        ];
        let gauges: Vec<(&'static str, f64)> = vec![
            ("duration_s", report.duration),
            ("qps", report.qps()),
            ("goodput_qps", report.goodput()),
            ("shed_rate", report.shed_rate()),
            ("wps", report.wps()),
            ("mean_n_io", report.mean_n_io()),
            ("replica_imbalance", report.replica_imbalance()),
            ("device_latency_sum_s", d.latency_sum),
            ("device_busy_sum_s", d.busy_sum),
        ];
        let histograms: Vec<(&'static str, LatencySummary)> = vec![
            ("read_latency", report.latency()),
            ("read_service_latency", report.service_latency()),
            ("read_queue_wait", report.queue_wait()),
            ("write_latency", report.write_latency()),
            ("write_service_latency", report.write_service_latency()),
            ("write_queue_wait", report.write_queue_wait()),
        ];
        Self {
            counters,
            gauges,
            histograms,
            replica_load: report.replica_load.clone(),
            slow_queries: report.slow_queries.clone(),
        }
    }

    /// Counter value by export name (exact match), if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by export name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Histogram summary by export name, if present.
    pub fn histogram(&self, name: &str) -> Option<&LatencySummary> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }
}

fn push_key(out: &mut String, key: &str) {
    key.to_json(out);
    out.push(':');
}

impl Serialize for MetricsRegistry {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "schema_version");
        SCHEMA_VERSION.to_json(out);

        out.push(',');
        push_key(out, "counters");
        out.push('{');
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(out, name);
            v.to_json(out);
        }
        out.push('}');

        out.push(',');
        push_key(out, "gauges");
        out.push('{');
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(out, name);
            v.to_json(out);
        }
        out.push('}');

        out.push(',');
        push_key(out, "histograms");
        out.push('{');
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(out, name);
            summary_to_json(s, out);
        }
        out.push('}');

        out.push(',');
        push_key(out, "replica_load");
        self.replica_load.to_json(out);

        out.push(',');
        push_key(out, "slow_queries");
        self.slow_queries.to_json(out);
        out.push('}');
    }
}

fn summary_to_json(s: &LatencySummary, out: &mut String) {
    out.push('{');
    push_key(out, "count");
    s.count.to_json(out);
    out.push(',');
    push_key(out, "mean");
    s.mean.to_json(out);
    out.push(',');
    push_key(out, "p50");
    s.p50.to_json(out);
    out.push(',');
    push_key(out, "p95");
    s.p95.to_json(out);
    out.push(',');
    push_key(out, "p99");
    s.p99.to_json(out);
    out.push(',');
    push_key(out, "max");
    s.max.to_json(out);
    out.push('}');
}

impl Serialize for ShardSpan {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "shard");
        self.shard.to_json(out);
        out.push(',');
        push_key(out, "replica");
        self.replica.to_json(out);
        out.push(',');
        push_key(out, "start");
        self.start.to_json(out);
        out.push(',');
        push_key(out, "finish");
        self.finish.to_json(out);
        out.push(',');
        push_key(out, "n_io");
        self.n_io.to_json(out);
        out.push('}');
    }
}

impl Serialize for TraceSpan {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        push_key(out, "id");
        self.id.to_json(out);
        out.push(',');
        push_key(out, "kind");
        match &self.kind {
            SpanKind::Query => "query".to_json(out),
            SpanKind::Write { .. } => "write".to_json(out),
        }
        if let SpanKind::Write { blocks_invalidated } = &self.kind {
            out.push(',');
            push_key(out, "blocks_invalidated");
            blocks_invalidated.to_json(out);
        }
        out.push(',');
        push_key(out, "submitted");
        self.submitted.to_json(out);
        out.push(',');
        push_key(out, "routed");
        self.routed.to_json(out);
        out.push(',');
        push_key(out, "resolved");
        self.resolved.to_json(out);
        out.push(',');
        push_key(out, "net_ingress");
        self.net_ingress().to_json(out);
        out.push(',');
        push_key(out, "route");
        self.route().to_json(out);
        out.push(',');
        push_key(out, "queue_wait");
        self.queue_wait().to_json(out);
        out.push(',');
        push_key(out, "service");
        self.service().to_json(out);
        out.push(',');
        push_key(out, "merge");
        self.merge().to_json(out);
        out.push(',');
        push_key(out, "end_to_end");
        self.end_to_end().to_json(out);
        out.push(',');
        push_key(out, "total_io");
        self.total_io().to_json(out);
        out.push(',');
        push_key(out, "shards");
        self.shards.to_json(out);
        out.push('}');
    }
}

/// Serialize a [`ServiceReport`] snapshot under the export schema
/// (shorthand for registry construction + `serde_json::to_string`).
pub fn report_json(report: &ServiceReport) -> String {
    let registry = MetricsRegistry::from_report(report);
    serde_json::to_string(&registry).expect("export serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    fn sample_report() -> ServiceReport {
        let mut r = ServiceReport::empty(4, 2, 1);
        r.completed_queries = 10;
        r.shed_queries = 2;
        for i in 0..10 {
            r.read_hist.record(1e-3 * (i + 1) as f64);
            r.read_service_hist.record(0.5e-3 * (i + 1) as f64);
            r.read_wait_hist.record(0.5e-3 * (i + 1) as f64);
        }
        r.duration = 1.0;
        r.replica_load = vec![vec![5, 5], vec![6, 4]];
        r.slow_queries = vec![TraceSpan {
            id: 3,
            kind: SpanKind::Query,
            submitted: 0.0,
            net: None,
            routed: 0.001,
            shards: vec![ShardSpan {
                shard: 0,
                replica: 1,
                start: 0.002,
                finish: 0.010,
                n_io: 7,
            }],
            resolved: 0.011,
        }];
        r
    }

    #[test]
    fn registry_names_resolve() {
        let reg = MetricsRegistry::from_report(&sample_report());
        assert_eq!(reg.counter("completed_queries"), Some(10));
        assert_eq!(reg.counter("shed_queries"), Some(2));
        assert!(reg.gauge("qps").unwrap() > 0.0);
        assert_eq!(reg.histogram("read_latency").unwrap().count, 10);
        assert!(reg.counter("no_such_counter").is_none());
    }

    #[test]
    fn export_parses_with_required_keys() {
        let json = report_json(&sample_report());
        let v = serde_json::from_str(&json).expect("export must parse");
        for key in [
            "schema_version",
            "counters",
            "gauges",
            "histograms",
            "slow_queries",
        ] {
            assert!(v.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(
            v.get("schema_version").unwrap().as_f64(),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("completed_queries")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
        let hist = v.get("histograms").unwrap().get("read_latency").unwrap();
        for stat in ["count", "mean", "p50", "p95", "p99", "max"] {
            assert!(hist.get(stat).is_some(), "missing histogram stat {stat}");
        }
        let slow = v.get("slow_queries").unwrap().as_array().unwrap();
        assert_eq!(slow.len(), 1);
        let span = &slow[0];
        assert_eq!(span.get("kind").unwrap().as_str(), Some("query"));
        // Exported stage durations telescope like the live accessors.
        let sum = ["net_ingress", "route", "queue_wait", "service", "merge"]
            .iter()
            .map(|k| span.get(k).unwrap().as_f64().unwrap())
            .sum::<f64>();
        let e2e = span.get("end_to_end").unwrap().as_f64().unwrap();
        assert!((sum - e2e).abs() < 1e-9);
    }

    #[test]
    fn v3_exports_net_counters() {
        let mut r = sample_report();
        r.net.connections_accepted = 8;
        r.net.tickets_orphaned = 3;
        let v = serde_json::from_str(&report_json(&r)).unwrap();
        let counters = v.get("counters").unwrap();
        for key in [
            "connections_accepted",
            "connections_dropped",
            "connections_peak",
            "frames_in",
            "frames_out",
            "frame_decode_errors",
            "tickets_orphaned",
        ] {
            assert!(counters.get(key).is_some(), "missing net counter {key}");
        }
        assert_eq!(
            counters.get("connections_accepted").unwrap().as_f64(),
            Some(8.0)
        );
        assert_eq!(
            counters.get("tickets_orphaned").unwrap().as_f64(),
            Some(3.0)
        );
        // An in-process report exports them too, as zeros.
        let v0 = serde_json::from_str(&report_json(&sample_report())).unwrap();
        assert_eq!(
            v0.get("counters")
                .unwrap()
                .get("frames_in")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn write_spans_carry_invalidation_counts() {
        let mut r = sample_report();
        r.slow_queries[0].kind = SpanKind::Write {
            blocks_invalidated: 9,
        };
        let v = serde_json::from_str(&report_json(&r)).unwrap();
        let span = &v.get("slow_queries").unwrap().as_array().unwrap()[0];
        assert_eq!(span.get("kind").unwrap().as_str(), Some("write"));
        assert_eq!(span.get("blocks_invalidated").unwrap().as_f64(), Some(9.0));
    }
}
