//! Load generation: admission disciplines and skewed query workloads.

use e2lsh_core::dataset::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How queries are admitted to the service.
#[derive(Clone, Copy, Debug)]
pub enum Load {
    /// Closed loop: keep exactly `window` queries in flight — a new query
    /// is dispatched the moment one completes. Latency is measured from
    /// dispatch. Models a fixed client population.
    Closed {
        /// In-flight query target.
        window: usize,
    },
    /// Open loop: queries arrive by a Poisson process at `rate_qps`,
    /// independent of completions. Latency is measured from the
    /// *scheduled* arrival, so queueing delay (and coordinated omission)
    /// is counted. Models aggregate internet traffic.
    Open {
        /// Mean arrival rate in queries/second.
        rate_qps: f64,
        /// Arrival-stream seed.
        seed: u64,
    },
}

/// One operation of a mixed read–write workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Serve query `i` of the query set (each query index appears at
    /// most once per op stream).
    Query(usize),
    /// Insert point `i` of the insert pool; the `j`-th insert of the
    /// stream receives global id `initial_n + j`.
    Insert(usize),
    /// Delete the object with this global id (live at this point of the
    /// stream: the generator never deletes an id twice, and only after
    /// the op that inserted it).
    Delete(u32),
}

/// A seeded mixed read–write op stream.
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    /// The ops, in dispatch order.
    pub ops: Vec<Op>,
    /// `Query` ops in the stream (= the query-set size it expects).
    pub num_queries: usize,
    /// `Insert` ops in the stream (= insert-pool points consumed).
    pub num_inserts: usize,
    /// `Delete` ops in the stream.
    pub num_deletes: usize,
}

/// Generate a mixed read–write op stream: `num_queries` queries
/// (indices `0..num_queries`, in order) interleaved with writes so that
/// each op is a write with probability `write_fraction`; each write is
/// a delete with probability `delete_fraction`, else an insert (capped
/// at `max_inserts`, falling back to deletes once the pool runs dry —
/// and vice versa when nothing is left to delete). Deletes pick a
/// uniformly random live id: build-time ids (`0..initial_n`) and ids
/// inserted *earlier in this stream* are both candidates, and no id is
/// deleted twice. Deterministic in `seed`.
pub fn mixed_ops(
    num_queries: usize,
    write_fraction: f64,
    delete_fraction: f64,
    initial_n: usize,
    max_inserts: usize,
    seed: u64,
) -> MixedWorkload {
    mixed_ops_resuming(
        num_queries,
        write_fraction,
        delete_fraction,
        (0..initial_n as u32).collect(),
        initial_n as u32,
        max_inserts,
        seed,
    )
}

/// [`mixed_ops`] against a database that has already been mutated:
/// `live` are the ids currently alive and `next_id` is the next global
/// id the service will assign (build-time total + inserts applied so
/// far). Use this to chain multiple op streams over one service —
/// replay each stream against your own live-set mirror to produce the
/// inputs for the next.
pub fn mixed_ops_resuming(
    num_queries: usize,
    write_fraction: f64,
    delete_fraction: f64,
    live: Vec<u32>,
    next_id: u32,
    max_inserts: usize,
    seed: u64,
) -> MixedWorkload {
    assert!(
        (0.0..1.0).contains(&write_fraction),
        "write_fraction in [0, 1)"
    );
    assert!((0.0..=1.0).contains(&delete_fraction));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live = live;
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    let mut qi = 0usize;
    while qi < num_queries {
        if rng.gen::<f64>() < write_fraction {
            let want_delete = rng.gen::<f64>() < delete_fraction;
            let can_insert = inserts < max_inserts;
            if (want_delete || !can_insert) && !live.is_empty() {
                let at = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(at)));
                deletes += 1;
            } else if can_insert {
                ops.push(Op::Insert(inserts));
                live.push(next_id + inserts as u32);
                inserts += 1;
            }
            // Neither possible (empty database, pool dry): fall through
            // to the next draw; queries still make progress.
        } else {
            ops.push(Op::Query(qi));
            qi += 1;
        }
    }
    MixedWorkload {
        ops,
        num_queries,
        num_inserts: inserts,
        num_deletes: deletes,
    }
}

/// Poisson arrival schedule: `n` scheduled offsets (seconds from epoch),
/// ascending, with exponential inter-arrival times at `rate_qps`.
pub fn poisson_arrivals(n: usize, rate_qps: f64, seed: u64) -> Vec<f64> {
    assert!(rate_qps > 0.0, "open-loop rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp u away from 1 to avoid ln(0).
            t += -(1.0 - u.min(1.0 - 1e-12)).ln() / rate_qps;
            t
        })
        .collect()
}

/// A skewed query stream: `total` queries drawn from `base` with
/// Zipf(`s`) popularity over the base queries (rank 1 = most popular).
/// This is the workload where a DRAM block cache pays off — hot queries
/// re-read the same hash-table slots and bucket chains.
pub fn skewed_queries(base: &Dataset, total: usize, s: f64, seed: u64) -> Dataset {
    assert!(!base.is_empty());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Zipf CDF over ranks 1..=n.
    let weights: Vec<f64> = (1..=base.len()).map(|r| (r as f64).powf(-s)).collect();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let norm = acc;
    let mut out = Dataset::with_capacity(base.dim(), total);
    for _ in 0..total {
        let u: f64 = rng.gen::<f64>() * norm;
        let rank = cdf.partition_point(|&c| c < u).min(base.len() - 1);
        out.push(base.point(rank));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_close() {
        let arr = poisson_arrivals(20_000, 1000.0, 7);
        assert_eq!(arr.len(), 20_000);
        assert!(arr.windows(2).all(|w| w[1] >= w[0]), "ascending");
        let duration = *arr.last().unwrap();
        let rate = arr.len() as f64 / duration;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn mixed_ops_are_well_formed() {
        let w = mixed_ops(500, 0.3, 0.4, 100, 80, 9);
        assert_eq!(w.num_queries, 500);
        assert!(w.num_inserts > 0 && w.num_inserts <= 80);
        assert!(w.num_deletes > 0);
        // Queries appear exactly once each, ascending.
        let queries: Vec<usize> = w
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Query(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(queries, (0..500).collect::<Vec<_>>());
        // Inserts are numbered in order; deletes target live ids only
        // (never twice, never before the op that inserted them).
        let mut next_insert = 0usize;
        let mut live: std::collections::HashSet<u32> = (0..100).collect();
        for op in &w.ops {
            match *op {
                Op::Query(_) => {}
                Op::Insert(i) => {
                    assert_eq!(i, next_insert);
                    live.insert((100 + i) as u32);
                    next_insert += 1;
                }
                Op::Delete(id) => {
                    assert!(live.remove(&id), "delete of dead id {id}");
                }
            }
        }
        // Same seed, same stream.
        assert_eq!(w.ops, mixed_ops(500, 0.3, 0.4, 100, 80, 9).ops);
        // All-read stream degenerates to queries only.
        let r = mixed_ops(50, 0.0, 0.5, 10, 10, 1);
        assert_eq!(r.ops.len(), 50);
        assert_eq!(r.num_inserts + r.num_deletes, 0);
    }

    #[test]
    fn skew_concentrates_on_head() {
        let base = Dataset::from_rows(&(0..64).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>());
        let q = skewed_queries(&base, 4000, 1.2, 3);
        assert_eq!(q.len(), 4000);
        // Count how often the most popular base query appears.
        let head = base.point(0);
        let head_count = (0..q.len()).filter(|&i| q.point(i) == head).count();
        assert!(
            head_count > 4000 / 64 * 4,
            "head appears {head_count} times — not skewed"
        );
    }
}
