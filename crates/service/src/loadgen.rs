//! Load generation: admission disciplines and skewed query workloads.

use e2lsh_core::dataset::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How queries are admitted to the service.
#[derive(Clone, Copy, Debug)]
pub enum Load {
    /// Closed loop: keep exactly `window` queries in flight — a new query
    /// is dispatched the moment one completes. Latency is measured from
    /// dispatch. Models a fixed client population.
    Closed {
        /// In-flight query target.
        window: usize,
    },
    /// Closed loop whose clients **honor the service's backoff hint**:
    /// a query shed with [`Overload`](crate::admission::Overload) is
    /// retried after the error's `retry_after` (derived from the shard
    /// queue's observed drain rate) instead of being abandoned, up to
    /// `max_retries` attempts; only then is it booked as shed. Latency
    /// of a retried query is measured from its *first* dispatch, so
    /// backoff time is visible in the percentiles.
    /// `ServiceReport::retries` counts the re-attempts. Writes never
    /// shed (they backpressure), so retries only ever apply to queries.
    ClosedBackoff {
        /// In-flight query target.
        window: usize,
        /// Re-attempts per query after its first shed (0 degenerates to
        /// [`Load::Closed`]).
        max_retries: usize,
    },
    /// Open loop: queries arrive by a Poisson process at `rate_qps`,
    /// independent of completions. Latency is measured from the
    /// *scheduled* arrival, so queueing delay (and coordinated omission)
    /// is counted. Models aggregate internet traffic. Rates above
    /// capacity are the overload regime bounded admission is for: with
    /// a finite `AdmissionBudget` the excess is shed instead of queued.
    Open {
        /// Mean arrival rate in queries/second.
        rate_qps: f64,
        /// Arrival-stream seed.
        seed: u64,
    },
    /// Open loop with batch-shaped arrivals: ops arrive `burst` at a
    /// time, the bursts forming a Poisson process whose rate keeps the
    /// long-run op rate at `rate_qps` (burst rate = `rate_qps / burst`).
    /// Models clients that ship a vector of queries per request — the
    /// arrival shape `query_batch` serves, and a harsher admission test
    /// than [`Load::Open`]: a whole burst hits the queues at one
    /// instant.
    Burst {
        /// Mean *op* arrival rate in ops/second.
        rate_qps: f64,
        /// Ops per burst (≥ 1; 1 degenerates to [`Load::Open`]).
        burst: usize,
        /// Arrival-stream seed.
        seed: u64,
    },
}

impl Load {
    /// Scheduled arrival offsets (seconds from the service epoch) for
    /// `n` ops. Only meaningful for the open-loop disciplines; the
    /// closed loop has no schedule (dispatch is completion-driven).
    pub(crate) fn arrival_schedule(&self, n: usize) -> Vec<f64> {
        match *self {
            Load::Closed { .. } | Load::ClosedBackoff { .. } => {
                unreachable!("closed loop has no arrival schedule")
            }
            Load::Open { rate_qps, seed } => poisson_arrivals(n, rate_qps, seed),
            Load::Burst {
                rate_qps,
                burst,
                seed,
            } => {
                let burst = burst.max(1);
                let num_bursts = n.div_ceil(burst);
                let burst_times = poisson_arrivals(num_bursts, rate_qps / burst as f64, seed);
                (0..n).map(|i| burst_times[i / burst]).collect()
            }
        }
    }
}

/// One operation of a mixed read–write workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Serve query `i` of the query set (each query index appears at
    /// most once per op stream).
    Query(usize),
    /// Insert point `i` of the insert pool; the `j`-th insert of the
    /// stream receives global id `initial_n + j`.
    Insert(usize),
    /// Delete the object with this global id (live at this point of the
    /// stream: the generator never deletes an id twice, and only after
    /// the op that inserted it).
    Delete(u32),
}

/// A seeded mixed read–write op stream.
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    /// The ops, in dispatch order.
    pub ops: Vec<Op>,
    /// `Query` ops in the stream (= the query-set size it expects).
    pub num_queries: usize,
    /// `Insert` ops in the stream (= insert-pool points consumed).
    pub num_inserts: usize,
    /// `Delete` ops in the stream.
    pub num_deletes: usize,
}

/// Generate a mixed read–write op stream: `num_queries` queries
/// (indices `0..num_queries`, in order) interleaved with writes so that
/// each op is a write with probability `write_fraction`; each write is
/// a delete with probability `delete_fraction`, else an insert (capped
/// at `max_inserts`, falling back to deletes once the pool runs dry —
/// and vice versa when nothing is left to delete). Deletes pick a
/// uniformly random live id: build-time ids (`0..initial_n`) and ids
/// inserted *earlier in this stream* are both candidates, and no id is
/// deleted twice. Deterministic in `seed`.
pub fn mixed_ops(
    num_queries: usize,
    write_fraction: f64,
    delete_fraction: f64,
    initial_n: usize,
    max_inserts: usize,
    seed: u64,
) -> MixedWorkload {
    mixed_ops_resuming(
        num_queries,
        write_fraction,
        delete_fraction,
        (0..initial_n as u32).collect(),
        initial_n as u32,
        max_inserts,
        seed,
    )
}

/// [`mixed_ops`] against a database that has already been mutated:
/// `live` are the ids currently alive and `next_id` is the next global
/// id the service will assign (build-time total + inserts applied so
/// far). Use this to chain multiple op streams over one service —
/// replay each stream against your own live-set mirror to produce the
/// inputs for the next.
pub fn mixed_ops_resuming(
    num_queries: usize,
    write_fraction: f64,
    delete_fraction: f64,
    live: Vec<u32>,
    next_id: u32,
    max_inserts: usize,
    seed: u64,
) -> MixedWorkload {
    assert!(
        (0.0..1.0).contains(&write_fraction),
        "write_fraction in [0, 1)"
    );
    assert!((0.0..=1.0).contains(&delete_fraction));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live = live;
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    let mut qi = 0usize;
    while qi < num_queries {
        if rng.gen::<f64>() < write_fraction {
            let want_delete = rng.gen::<f64>() < delete_fraction;
            let can_insert = inserts < max_inserts;
            if (want_delete || !can_insert) && !live.is_empty() {
                let at = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(at)));
                deletes += 1;
            } else if can_insert {
                ops.push(Op::Insert(inserts));
                live.push(next_id + inserts as u32);
                inserts += 1;
            }
            // Neither possible (empty database, pool dry): fall through
            // to the next draw; queries still make progress.
        } else {
            ops.push(Op::Query(qi));
            qi += 1;
        }
    }
    MixedWorkload {
        ops,
        num_queries,
        num_inserts: inserts,
        num_deletes: deletes,
    }
}

/// Poisson arrival schedule: `n` scheduled offsets (seconds from epoch),
/// ascending, with exponential inter-arrival times at `rate_qps`.
pub fn poisson_arrivals(n: usize, rate_qps: f64, seed: u64) -> Vec<f64> {
    assert!(rate_qps > 0.0, "open-loop rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp u away from 1 to avoid ln(0).
            t += -(1.0 - u.min(1.0 - 1e-12)).ln() / rate_qps;
            t
        })
        .collect()
}

/// `total` indices into `0..n` drawn with Zipf(`s`) popularity (rank 0
/// = most popular). The index-level primitive behind
/// [`skewed_queries`] and [`zipf_batches`]: skewed *keys* are what give
/// both the DRAM cache and batch dedup something to catch.
pub fn zipf_indices(n: usize, total: usize, s: f64, seed: u64) -> Vec<usize> {
    assert!(n > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Zipf CDF over ranks 1..=n.
    let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let norm = acc;
    (0..total)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * norm;
            cdf.partition_point(|&c| c < u).min(n - 1)
        })
        .collect()
}

/// A skewed query stream: `total` queries drawn from `base` with
/// Zipf(`s`) popularity over the base queries (rank 1 = most popular).
/// This is the workload where a DRAM block cache pays off — hot queries
/// re-read the same hash-table slots and bucket chains.
pub fn skewed_queries(base: &Dataset, total: usize, s: f64, seed: u64) -> Dataset {
    assert!(!base.is_empty());
    let mut out = Dataset::with_capacity(base.dim(), total);
    for rank in zipf_indices(base.len(), total, s, seed) {
        out.push(base.point(rank));
    }
    out
}

/// Duplicate-heavy batch requests: `num_batches` batches of
/// `batch_size` indices into `0..n`, each drawn Zipf(`s`) —
/// within-batch repeats of hot keys are exactly what
/// `ShardedService::query_batch`'s dedup collapses. Deterministic in
/// `seed`.
pub fn zipf_batches(
    n: usize,
    num_batches: usize,
    batch_size: usize,
    s: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    let flat = zipf_indices(n, num_batches * batch_size, s, seed);
    flat.chunks(batch_size.max(1))
        .map(<[usize]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_close() {
        let arr = poisson_arrivals(20_000, 1000.0, 7);
        assert_eq!(arr.len(), 20_000);
        assert!(arr.windows(2).all(|w| w[1] >= w[0]), "ascending");
        let duration = *arr.last().unwrap();
        let rate = arr.len() as f64 / duration;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn mixed_ops_are_well_formed() {
        let w = mixed_ops(500, 0.3, 0.4, 100, 80, 9);
        assert_eq!(w.num_queries, 500);
        assert!(w.num_inserts > 0 && w.num_inserts <= 80);
        assert!(w.num_deletes > 0);
        // Queries appear exactly once each, ascending.
        let queries: Vec<usize> = w
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Query(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(queries, (0..500).collect::<Vec<_>>());
        // Inserts are numbered in order; deletes target live ids only
        // (never twice, never before the op that inserted them).
        let mut next_insert = 0usize;
        let mut live: std::collections::HashSet<u32> = (0..100).collect();
        for op in &w.ops {
            match *op {
                Op::Query(_) => {}
                Op::Insert(i) => {
                    assert_eq!(i, next_insert);
                    live.insert((100 + i) as u32);
                    next_insert += 1;
                }
                Op::Delete(id) => {
                    assert!(live.remove(&id), "delete of dead id {id}");
                }
            }
        }
        // Same seed, same stream.
        assert_eq!(w.ops, mixed_ops(500, 0.3, 0.4, 100, 80, 9).ops);
        // All-read stream degenerates to queries only.
        let r = mixed_ops(50, 0.0, 0.5, 10, 10, 1);
        assert_eq!(r.ops.len(), 50);
        assert_eq!(r.num_inserts + r.num_deletes, 0);
    }

    #[test]
    fn burst_arrivals_are_batch_shaped() {
        let load = Load::Burst {
            rate_qps: 1000.0,
            burst: 8,
            seed: 3,
        };
        let arr = load.arrival_schedule(50);
        assert_eq!(arr.len(), 50);
        assert!(arr.windows(2).all(|w| w[1] >= w[0]), "ascending");
        // Ops within a burst share one instant; 50 ops = 7 bursts.
        for chunk in arr.chunks(8) {
            assert!(chunk.iter().all(|&t| t == chunk[0]), "burst not atomic");
        }
        let distinct: std::collections::HashSet<u64> = arr.iter().map(|t| t.to_bits()).collect();
        assert_eq!(distinct.len(), 50usize.div_ceil(8));
        // Long-run op rate stays near rate_qps.
        let arr = load.arrival_schedule(20_000);
        let rate = arr.len() as f64 / arr.last().unwrap();
        assert!((rate - 1000.0).abs() / 1000.0 < 0.1, "rate {rate}");
        // burst = 1 degenerates to plain Poisson.
        let one = Load::Burst {
            rate_qps: 500.0,
            burst: 1,
            seed: 9,
        };
        assert_eq!(one.arrival_schedule(100), poisson_arrivals(100, 500.0, 9));
    }

    #[test]
    fn zipf_batches_are_duplicate_heavy_and_seeded() {
        let batches = zipf_batches(32, 10, 64, 1.2, 5);
        assert_eq!(batches.len(), 10);
        assert!(batches.iter().all(|b| b.len() == 64));
        assert!(batches.iter().flatten().all(|&i| i < 32));
        // Zipf skew ⇒ each batch repeats hot keys (64 draws over 32
        // keys must collide, and skew makes it much worse than uniform).
        for b in &batches {
            let distinct: std::collections::HashSet<usize> = b.iter().copied().collect();
            assert!(distinct.len() < b.len(), "no duplicates to dedup");
        }
        assert_eq!(batches, zipf_batches(32, 10, 64, 1.2, 5), "seeded");
        assert_ne!(batches, zipf_batches(32, 10, 64, 1.2, 6));
    }

    #[test]
    fn skew_concentrates_on_head() {
        let base = Dataset::from_rows(&(0..64).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>());
        let q = skewed_queries(&base, 4000, 1.2, 3);
        assert_eq!(q.len(), 4000);
        // Count how often the most popular base query appears.
        let head = base.point(0);
        let head_count = (0..q.len()).filter(|&i| q.point(i) == head).count();
        assert!(
            head_count > 4000 / 64 * 4,
            "head appears {head_count} times — not skewed"
        );
    }
}
