//! Load generation: admission disciplines and skewed query workloads.

use e2lsh_core::dataset::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How queries are admitted to the service.
#[derive(Clone, Copy, Debug)]
pub enum Load {
    /// Closed loop: keep exactly `window` queries in flight — a new query
    /// is dispatched the moment one completes. Latency is measured from
    /// dispatch. Models a fixed client population.
    Closed {
        /// In-flight query target.
        window: usize,
    },
    /// Open loop: queries arrive by a Poisson process at `rate_qps`,
    /// independent of completions. Latency is measured from the
    /// *scheduled* arrival, so queueing delay (and coordinated omission)
    /// is counted. Models aggregate internet traffic.
    Open {
        /// Mean arrival rate in queries/second.
        rate_qps: f64,
        /// Arrival-stream seed.
        seed: u64,
    },
}

/// Poisson arrival schedule: `n` scheduled offsets (seconds from epoch),
/// ascending, with exponential inter-arrival times at `rate_qps`.
pub fn poisson_arrivals(n: usize, rate_qps: f64, seed: u64) -> Vec<f64> {
    assert!(rate_qps > 0.0, "open-loop rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp u away from 1 to avoid ln(0).
            t += -(1.0 - u.min(1.0 - 1e-12)).ln() / rate_qps;
            t
        })
        .collect()
}

/// A skewed query stream: `total` queries drawn from `base` with
/// Zipf(`s`) popularity over the base queries (rank 1 = most popular).
/// This is the workload where a DRAM block cache pays off — hot queries
/// re-read the same hash-table slots and bucket chains.
pub fn skewed_queries(base: &Dataset, total: usize, s: f64, seed: u64) -> Dataset {
    assert!(!base.is_empty());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Zipf CDF over ranks 1..=n.
    let weights: Vec<f64> = (1..=base.len()).map(|r| (r as f64).powf(-s)).collect();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let norm = acc;
    let mut out = Dataset::with_capacity(base.dim(), total);
    for _ in 0..total {
        let u: f64 = rng.gen::<f64>() * norm;
        let rank = cdf.partition_point(|&c| c < u).min(base.len() - 1);
        out.push(base.point(rank));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_close() {
        let arr = poisson_arrivals(20_000, 1000.0, 7);
        assert_eq!(arr.len(), 20_000);
        assert!(arr.windows(2).all(|w| w[1] >= w[0]), "ascending");
        let duration = *arr.last().unwrap();
        let rate = arr.len() as f64 / duration;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn skew_concentrates_on_head() {
        let base = Dataset::from_rows(&(0..64).map(|i| vec![i as f32, 0.0]).collect::<Vec<_>>());
        let q = skewed_queries(&base, 4000, 1.2, 3);
        assert_eq!(q.len(), 4000);
        // Count how often the most popular base query appears.
        let head = base.point(0);
        let head_count = (0..q.len()).filter(|&i| q.point(i) == head).count();
        assert!(
            head_count > 4000 / 64 * 4,
            "head appears {head_count} times — not skewed"
        );
    }
}
