//! Load-aware replica routing and the fencing/failover protocol.
//!
//! With replica groups ([`crate::topology`]), a query still fans out to
//! every *shard*, but within each shard the router picks **one
//! replica** to serve it:
//!
//! * [`RoutePolicy::PowerOfTwoChoices`] (default) — sample two live
//!   replicas, send to the one with the shorter admission queue. The
//!   classic two-choices result: near-best-of-all balancing at the cost
//!   of two depth reads, robust to heterogeneous replica speed (a slow
//!   or degraded replica's queue grows, so it stops attracting load).
//!   Queue depth is live — [`GatedSender::depth`] is the same counter
//!   the admission budget enforces.
//! * [`RoutePolicy::RoundRobin`] — cycle over live replicas, blind to
//!   load. The baseline: balances *counts*, not *backlog*; a slow
//!   replica keeps receiving its full share.
//! * [`RoutePolicy::Broadcast`] — send to **every** live replica (R×
//!   work amplification, duplicate partials deduplicated at merge).
//!   The correctness baseline and a latency-race mode; a mid-run fence
//!   shrinks affected queries' partial quotas instead of re-dispatching
//!   (the surviving replicas already carry identical answers).
//!
//! ## Fencing and failover
//!
//! A replica dies by being **fenced** ([`Topology::fence`] — operator,
//! test kill switch, or a worker panic). The handshake that makes this
//! race-free against concurrent dispatch, per run:
//!
//! 1. every send increments the lane's `routes` counter **before**
//!    checking the down flag ([`Router::reserve_on_shard`]), and
//!    decrements it after the send lands in the queue;
//! 2. the fenced replica's workers observe the flag, stop serving
//!    (abandoning queued and in-flight jobs), and the **last** worker
//!    out spin-waits for `routes == 0` before emitting one
//!    [`WorkerMsg::ReplicaDown`](crate::worker::WorkerMsg) — so by the
//!    time the collector sees it, every routed job is either in the
//!    dead queue or already reported, and the routing table (the
//!    per-query dispatch bitmasks behind [`Router::quota`]) is
//!    complete for the scan;
//! 3. the collector re-dispatches every outstanding query that was
//!    routed to the dead replica to a live sibling
//!    ([`Router::redispatch`], **blocking** admission — a failover op
//!    was already admitted once and must not turn into a shed storm),
//!    counting each in [`ServiceReport::failovers`]; under broadcast
//!    it instead drops the dead replica's bit from the query's
//!    dispatch set ([`Router::clear_routed_bit`]);
//! 4. duplicate partials (a job the dying replica did complete, raced
//!    by its re-dispatch) are dropped by the collector's per-shard
//!    received markers.
//!
//! When a shard has **no** live replica left, new queries are shed with
//! a synthetic [`Overload`] and outstanding ones complete with that
//! shard's partial empty — degraded answers, but the run terminates.
//!
//! [`Topology::fence`]: crate::topology::Topology::fence
//! [`ServiceReport::failovers`]: crate::service::ServiceReport::failovers

use crate::admission::{GatedSender, Overload};
use crate::topology::Topology;
use crate::worker::Job;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How the service picks a replica within each shard for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Sample two live replicas, route to the shorter admission queue
    /// (load-aware; the default).
    #[default]
    PowerOfTwoChoices,
    /// Cycle over live replicas regardless of load (baseline).
    RoundRobin,
    /// Send to every live replica; merged results are deduplicated.
    /// R× work amplification; a mid-run fence shrinks the affected
    /// queries' quotas instead of re-dispatching.
    Broadcast,
}

/// SplitMix64 bit mixer — the router's stateless per-draw randomness
/// (`seq`-th draw of a seeded stream). Public for the model-check tests
/// that replay the router's exact sampling.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Round-robin selection core: the `cursor`-th turn over `live`
/// replicas. Pure — shared by the live router and the model tests.
#[inline]
pub fn round_robin_pick(live: &[usize], cursor: usize) -> usize {
    live[cursor % live.len()]
}

/// Power-of-two-choices selection core: sample two of `live` with the
/// given raw draws, return the sampled replica whose `depth_of` is
/// smaller (first sample wins ties). Pure — shared by the live router
/// and the model tests.
#[inline]
pub fn power_of_two_pick(
    live: &[usize],
    mut depth_of: impl FnMut(usize) -> usize,
    draw_a: u64,
    draw_b: u64,
) -> usize {
    let a = live[(draw_a % live.len() as u64) as usize];
    let b = live[(draw_b % live.len() as u64) as usize];
    if depth_of(b) < depth_of(a) {
        b
    } else {
        a
    }
}

/// Per-lane (shard × replica) handshake state of one run, shared
/// between the router (dispatch side) and the replica's workers (exit
/// side). Owned by the serve call's stack frame.
#[derive(Debug, Default)]
pub struct LaneState {
    /// In-progress sends to this lane (incremented before the down
    /// check, decremented after the send lands — see the module docs).
    pub routes: AtomicUsize,
    /// Workers of this replica that have exited this run (the last one
    /// performs the quiesce + `ReplicaDown` duty when fenced).
    pub exited: AtomicUsize,
}

/// Build the per-run lane-state grid for `num_shards` × `replicas`.
pub fn lane_states(num_shards: usize, replicas: usize) -> Vec<Vec<LaneState>> {
    (0..num_shards)
        .map(|_| (0..replicas).map(|_| LaneState::default()).collect())
        .collect()
}

/// Upper bound on replicas per shard: the routing table stores the set
/// of replicas a (query, shard) partial was dispatched to as a bitmask
/// in one `AtomicU64`, and the selection path uses a stack buffer of
/// this size. Enforced by `ShardedService::new`.
pub const MAX_REPLICAS: usize = 64;

/// The per-run router: owns the query senders of every lane, picks a
/// replica per shard per query, and keeps the routing table the
/// collector's quota accounting and the failover scan need.
pub(crate) struct Router<'a> {
    topo: &'a Topology,
    /// `[shard][replica]` query senders (dropping the router closes
    /// every replica's queue).
    txs: Vec<Vec<GatedSender<Job>>>,
    lanes: &'a [Vec<LaneState>],
    policy: RoutePolicy,
    /// Per-shard round-robin cursors.
    rr: Vec<AtomicUsize>,
    /// Draw counter for the stateless p2c sampler.
    rng_seq: AtomicU64,
    rng_seed: u64,
    /// `qid * num_shards + shard` → bitmask of replicas the partial was
    /// dispatched to (0 = never dispatched). Every bit of a query's
    /// fan-out is stored **before** any of its jobs are sent, so the
    /// collector's per-shard quota ([`Router::quota`]) always equals
    /// what was actually sent — under broadcast the quota is the live
    /// set *at dispatch time*, not at run start, which is what makes a
    /// mid-run fence (operator or panic) terminate instead of waiting
    /// for partials from a replica that was never asked.
    table: Vec<AtomicU64>,
    /// Successful failover re-dispatches.
    failovers: AtomicUsize,
    /// (qid, shard) partials abandoned because no live replica was
    /// left to re-dispatch to.
    abandoned: AtomicUsize,
}

impl<'a> Router<'a> {
    pub fn new(
        topo: &'a Topology,
        txs: Vec<Vec<GatedSender<Job>>>,
        lanes: &'a [Vec<LaneState>],
        policy: RoutePolicy,
        num_queries: usize,
        seed: u64,
    ) -> Self {
        let num_shards = topo.num_shards();
        assert!(topo.replicas_per_shard() <= MAX_REPLICAS);
        Self {
            topo,
            txs,
            lanes,
            policy,
            rr: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
            rng_seq: AtomicU64::new(0),
            rng_seed: seed,
            table: (0..num_queries * num_shards)
                .map(|_| AtomicU64::new(0))
                .collect(),
            failovers: AtomicUsize::new(0),
            abandoned: AtomicUsize::new(0),
        }
    }

    /// The routing policy this run dispatches under.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    #[inline]
    fn cell(&self, qid: usize, shard: usize) -> &AtomicU64 {
        &self.table[qid * self.topo.num_shards() + shard]
    }

    /// How many partials `qid` still expects from `shard`: the number
    /// of replicas its fan-out was actually sent to (0 = not yet
    /// dispatched).
    pub fn quota(&self, qid: usize, shard: usize) -> usize {
        self.cell(qid, shard).load(Ordering::Acquire).count_ones() as usize
    }

    /// True when `qid`'s partial for `shard` was dispatched to
    /// `replica` (and not yet re-routed away from it).
    pub fn is_routed_to(&self, qid: usize, shard: usize, replica: usize) -> bool {
        self.cell(qid, shard).load(Ordering::Acquire) & (1 << replica) != 0
    }

    /// Drop `replica` from `qid`/`shard`'s dispatch set (broadcast
    /// fence handling: the dead replica will not answer, so the quota
    /// shrinks by its bit).
    pub fn clear_routed_bit(&self, qid: usize, shard: usize, replica: usize) {
        self.cell(qid, shard)
            .fetch_and(!(1u64 << replica), Ordering::AcqRel);
    }

    /// Successful failover re-dispatches so far.
    pub fn failovers(&self) -> usize {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Partials abandoned for lack of any live replica.
    pub fn abandoned(&self) -> usize {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// High-water queue depth over every lane.
    pub fn peak_depth(&self) -> usize {
        self.txs
            .iter()
            .flatten()
            .map(|tx| tx.stats().peak_depth)
            .max()
            .unwrap_or(0)
    }

    fn no_live_overload(&self, shard: usize) -> Overload {
        Overload {
            shard,
            depth: 0,
            queued_bytes: 0,
            retry_after: Overload::MAX_RETRY_AFTER,
        }
    }

    /// Pick a live replica of `shard` per the policy (`exclude`: the
    /// replica a failover is fleeing). None when the shard has no
    /// eligible replica. The live set is gathered into a stack buffer —
    /// this runs once per query per shard, no heap traffic.
    fn select(&self, shard: usize, exclude: Option<usize>) -> Option<usize> {
        let mut buf = [0usize; MAX_REPLICAS];
        let mut n = 0;
        for r in 0..self.topo.replicas_per_shard() {
            if Some(r) != exclude && !self.topo.is_down(shard, r) {
                buf[n] = r;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let live = &buf[..n];
        Some(match self.policy {
            RoutePolicy::RoundRobin | RoutePolicy::Broadcast => {
                let cursor = self.rr[shard].fetch_add(1, Ordering::Relaxed);
                round_robin_pick(live, cursor)
            }
            RoutePolicy::PowerOfTwoChoices => {
                let seq = self.rng_seq.fetch_add(2, Ordering::Relaxed);
                let a = splitmix64(self.rng_seed ^ seq);
                let b = splitmix64(self.rng_seed ^ (seq + 1));
                power_of_two_pick(live, |r| self.txs[shard][r].depth(), a, b)
            }
        })
    }

    /// Reserve one slot of `cost` bytes on a live replica of `shard`.
    /// On success the lane's `routes` guard is **held**: the caller
    /// must follow with [`Router::send_reserved`] or
    /// [`Router::unreserve`], both of which release it.
    fn reserve_on_shard(&self, shard: usize, cost: usize) -> Result<usize, Overload> {
        loop {
            let Some(r) = self.select(shard, None) else {
                return Err(self.no_live_overload(shard));
            };
            let lane = &self.lanes[shard][r];
            lane.routes.fetch_add(1, Ordering::SeqCst);
            if self.topo.is_down(shard, r) {
                // Lost the race against a fence: back off and re-select
                // (the quiesce in the worker exit path waits for this
                // counter, so the window is bounded).
                lane.routes.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            return match self.txs[shard][r].reserve(cost) {
                Ok(()) => Ok(r),
                Err(e) => {
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    Err(e)
                }
            };
        }
    }

    fn send_reserved(&self, qid: usize, shard: usize, replica: usize, cost: usize) {
        self.txs[shard][replica].send_reserved(Job { qid }, cost);
        self.lanes[shard][replica]
            .routes
            .fetch_sub(1, Ordering::SeqCst);
    }

    fn unreserve(&self, shard: usize, replica: usize, cost: usize) {
        self.txs[shard][replica].unreserve(cost);
        self.lanes[shard][replica]
            .routes
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// All-or-nothing fan-out of one query: reserve a slot on one
    /// replica per shard (every live replica per shard under broadcast)
    /// or shed on the first shard that cannot admit it, rolling earlier
    /// reservations back. On success the full dispatch set is written
    /// to the routing table before the first job is sent, so any
    /// partial the collector receives can resolve its quota.
    pub fn try_fanout(&self, qid: usize, cost: usize) -> Result<(), Overload> {
        let num_shards = self.topo.num_shards();
        let mut picked: Vec<(usize, usize)> = Vec::with_capacity(num_shards);
        let rollback = |picked: &[(usize, usize)]| {
            for &(ps, pr) in picked {
                self.unreserve(ps, pr, cost);
            }
        };
        for s in 0..num_shards {
            if self.policy == RoutePolicy::Broadcast {
                let before = picked.len();
                for r in 0..self.topo.replicas_per_shard() {
                    if self.topo.is_down(s, r) {
                        continue;
                    }
                    let lane = &self.lanes[s][r];
                    lane.routes.fetch_add(1, Ordering::SeqCst);
                    // Re-check under the routes guard (same handshake as
                    // `reserve_on_shard`): a replica fenced between the
                    // first check and here must not be sent to — its
                    // workers may already be gone.
                    if self.topo.is_down(s, r) {
                        lane.routes.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    match self.txs[s][r].reserve(cost) {
                        Ok(()) => picked.push((s, r)),
                        Err(e) => {
                            lane.routes.fetch_sub(1, Ordering::SeqCst);
                            rollback(&picked);
                            return Err(e);
                        }
                    }
                }
                if picked.len() == before {
                    rollback(&picked);
                    return Err(self.no_live_overload(s));
                }
            } else {
                match self.reserve_on_shard(s, cost) {
                    Ok(r) => picked.push((s, r)),
                    Err(e) => {
                        rollback(&picked);
                        return Err(e);
                    }
                }
            }
        }
        // Publish the dispatch set, then send. (Fan-out is attempted at
        // most once per query per admission decision and rolled back
        // wholesale on failure, so the cells are 0 here.)
        for &(s, r) in &picked {
            self.cell(qid, s).fetch_or(1u64 << r, Ordering::AcqRel);
        }
        for (s, r) in picked {
            self.send_reserved(qid, s, r, cost);
        }
        Ok(())
    }

    /// Failover: re-dispatch `qid`'s partial for `shard` away from the
    /// fenced `dead` replica, **blocking** on admission (a failover op
    /// was admitted once already — turning it into a shed would make
    /// every fence a shed storm). Returns the sibling that took it, or
    /// `None` when the shard has no live replica left (the caller
    /// books an empty partial so the run still terminates).
    ///
    /// The wait re-selects on every probe, so a sibling that is itself
    /// fenced mid-wait is abandoned instead of spun on forever (its
    /// frozen queue would never drain). Probes use the non-shed-
    /// counting reserve: a full sibling is backpressure here, not an
    /// outcome.
    pub fn redispatch(&self, qid: usize, shard: usize, dead: usize) -> Option<usize> {
        loop {
            let r = self.select(shard, Some(dead))?;
            let lane = &self.lanes[shard][r];
            lane.routes.fetch_add(1, Ordering::SeqCst);
            if self.topo.is_down(shard, r) {
                lane.routes.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            match self.txs[shard][r].reserve_uncounted(0) {
                Ok(()) => {
                    // Swap the dead replica's bit for the sibling's
                    // (single-writer here: the dispatcher finished with
                    // this cell before the quiesce let the scan run).
                    let old = self.cell(qid, shard).load(Ordering::Acquire);
                    self.cell(qid, shard)
                        .store((old & !(1u64 << dead)) | (1u64 << r), Ordering::Release);
                    self.txs[shard][r].send_reserved(Job { qid }, 0);
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    return Some(r);
                }
                Err(_) => {
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            }
        }
    }

    /// Book a partial abandoned for lack of live replicas.
    pub fn count_abandoned(&self) {
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_over_live() {
        let live = [0usize, 2, 3];
        let picks: Vec<usize> = (0..6).map(|c| round_robin_pick(&live, c)).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn power_of_two_prefers_shorter_queue() {
        let live = [0usize, 1];
        let depths = [10usize, 2];
        // Draws selecting (0, 1): depth 2 < 10 → replica 1.
        assert_eq!(power_of_two_pick(&live, |r| depths[r], 0, 1), 1);
        // Draws selecting (1, 0): still replica 1 (first sample wins
        // only ties).
        assert_eq!(power_of_two_pick(&live, |r| depths[r], 1, 0), 1);
        // Tie: first sample wins.
        assert_eq!(power_of_two_pick(&live, |_| 5, 1, 0), 1);
        assert_eq!(power_of_two_pick(&live, |_| 5, 0, 1), 0);
    }

    #[test]
    fn splitmix_spreads_sequential_seeds() {
        // Sequential inputs must not collapse onto one replica: over a
        // window of draws, both parities appear.
        let parities: std::collections::HashSet<u64> =
            (0..16u64).map(|i| splitmix64(i) % 2).collect();
        assert_eq!(parities.len(), 2);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
