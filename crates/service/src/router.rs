//! Load-aware replica routing and the fencing/failover protocol.
//!
//! With replica groups ([`crate::topology`]), a query still fans out to
//! every *shard*, but within each shard the router picks **one
//! replica** to serve it:
//!
//! * [`RoutePolicy::PowerOfTwoChoices`] (default) — sample two live
//!   replicas, send to the one with the shorter admission queue. The
//!   classic two-choices result: near-best-of-all balancing at the cost
//!   of two depth reads, robust to heterogeneous replica speed (a slow
//!   or degraded replica's queue grows, so it stops attracting load).
//!   Queue depth is live — [`GatedSender::depth`] is the same counter
//!   the admission budget enforces.
//! * [`RoutePolicy::RoundRobin`] — cycle over live replicas, blind to
//!   load. The baseline: balances *counts*, not *backlog*; a slow
//!   replica keeps receiving its full share.
//! * [`RoutePolicy::Broadcast`] — send to **every** live replica (R×
//!   work amplification, duplicate partials deduplicated at merge).
//!   The correctness baseline and a latency-race mode; a mid-run fence
//!   shrinks affected queries' partial quotas instead of re-dispatching
//!   (the surviving replicas already carry identical answers).
//!
//! Since the session redesign the router is **session-lived**: one
//! router (the crate-private `Router`) serves every query submitted
//! through a [`Session`](crate::session::Session)'s clients, and the routing
//! table is no longer a dense per-run array but lives with each live
//! ticket — every in-flight query carries its own per-shard dispatch
//! bitmasks (see [`crate::session`]), written before the first job is
//! sent. The masks are keyed by live ticket ids exactly: a completed
//! ticket's masks are dropped with its registry entry.
//!
//! ## Fencing and failover
//!
//! A replica dies by being **fenced** ([`Topology::fence`] — operator,
//! test kill switch, or a reactor panic). The handshake that makes this
//! race-free against concurrent dispatch, per session:
//!
//! 1. every send increments the lane's `routes` counter **before**
//!    checking the down flag, and decrements it after the send lands in
//!    the queue;
//! 2. the fenced replica's reactor observes the flag, stops serving
//!    (abandoning queued and in-flight jobs), and — as the lane's only
//!    queue receiver — waits for `routes == 0` before emitting one
//!    [`ReactorMsg::ReplicaDown`](crate::reactor::ReactorMsg) — so by
//!    the time the collector sees it, every routed job is either in the
//!    dead queue or already reported, and each live ticket's dispatch
//!    masks are complete for the scan;
//! 3. the session collector re-dispatches every outstanding query that
//!    was routed to the dead replica to a live sibling
//!    (`Router::redispatch`, **blocking** admission — a failover op
//!    was already admitted once and must not turn into a shed storm),
//!    counting each in [`ServiceReport::failovers`]; under broadcast
//!    it instead drops the dead replica's bit from the query's
//!    dispatch set (`clear_routed_bit`);
//! 4. duplicate partials (a job the dying replica did complete, raced
//!    by its re-dispatch) are dropped by the collector's per-shard
//!    received markers.
//!
//! When a shard has **no** live replica left, new queries are shed with
//! a synthetic [`Overload`] and outstanding ones complete with that
//! shard's partial empty — degraded answers, but the session stays
//! live.
//!
//! [`Topology::fence`]: crate::topology::Topology::fence
//! [`ServiceReport::failovers`]: crate::service::ServiceReport::failovers

use crate::admission::{GatedSender, Overload};
use crate::reactor::Job;
use crate::topology::Topology;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the service picks a replica within each shard for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Sample two live replicas, route to the shorter admission queue
    /// (load-aware; the default).
    #[default]
    PowerOfTwoChoices,
    /// Cycle over live replicas regardless of load (baseline).
    RoundRobin,
    /// Send to every live replica; merged results are deduplicated.
    /// R× work amplification; a mid-run fence shrinks the affected
    /// queries' quotas instead of re-dispatching.
    Broadcast,
}

/// SplitMix64 bit mixer — the router's stateless per-draw randomness
/// (`seq`-th draw of a seeded stream). Public for the model-check tests
/// that replay the router's exact sampling.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Round-robin selection core: the `cursor`-th turn over `live`
/// replicas. Pure — shared by the live router and the model tests.
#[inline]
pub fn round_robin_pick(live: &[usize], cursor: usize) -> usize {
    live[cursor % live.len()]
}

/// Power-of-two-choices selection core: sample two of `live` with the
/// given raw draws, return the sampled replica whose `depth_of` is
/// smaller (first sample wins ties). Pure — shared by the live router
/// and the model tests.
#[inline]
pub fn power_of_two_pick(
    live: &[usize],
    mut depth_of: impl FnMut(usize) -> usize,
    draw_a: u64,
    draw_b: u64,
) -> usize {
    let a = live[(draw_a % live.len() as u64) as usize];
    let b = live[(draw_b % live.len() as u64) as usize];
    if depth_of(b) < depth_of(a) {
        b
    } else {
        a
    }
}

/// Per-lane (shard × replica) handshake state of one session, shared
/// between the router (dispatch side) and the replica's reactor (exit
/// side).
#[derive(Debug, Default)]
pub struct LaneState {
    /// In-progress sends to this lane (incremented before the down
    /// check, decremented after the send lands — see the module docs).
    pub routes: AtomicUsize,
    /// Queue receivers of this replica that have exited this session —
    /// one per replica since the reactor redesign; the reactor performs
    /// the quiesce + `ReplicaDown` duty itself when fenced.
    pub exited: AtomicUsize,
    /// Latched when the replica's reactor observes the fence: within
    /// this session the fence is **sticky** — an unfence racing the
    /// exit handshake must not suppress the `ReplicaDown` emission
    /// (stranding in-flight tickets) or leave the lane half-dead.
    /// Checked every reactor iteration and by the router's availability
    /// test; cleared only by the next session (fresh lane states).
    pub fenced: std::sync::atomic::AtomicBool,
}

/// Build the per-session lane-state grid for `num_shards` × `replicas`.
pub fn lane_states(num_shards: usize, replicas: usize) -> Vec<Vec<LaneState>> {
    (0..num_shards)
        .map(|_| (0..replicas).map(|_| LaneState::default()).collect())
        .collect()
}

/// Upper bound on replicas per shard: each live ticket stores the set
/// of replicas a (query, shard) partial was dispatched to as a bitmask
/// in one `AtomicU64`, and the selection path uses a stack buffer of
/// this size. Enforced by `Router::new` (via `Session::start`).
pub const MAX_REPLICAS: usize = 64;

/// How many partials the query owes `shard`: the number of replicas its
/// fan-out was actually sent to (0 = not dispatched, or every broadcast
/// replica of the shard died). `masks` is the ticket's per-shard
/// dispatch-bitmask array.
#[inline]
pub(crate) fn quota(masks: &[AtomicU64], shard: usize) -> usize {
    masks[shard].load(Ordering::Acquire).count_ones() as usize
}

/// True when the query's partial for `shard` was dispatched to
/// `replica` (and not yet re-routed away from it).
#[inline]
pub(crate) fn is_routed_to(masks: &[AtomicU64], shard: usize, replica: usize) -> bool {
    masks[shard].load(Ordering::Acquire) & (1 << replica) != 0
}

/// Drop `replica` from the query's dispatch set for `shard` (broadcast
/// fence handling: the dead replica will not answer, so the quota
/// shrinks by its bit).
#[inline]
pub(crate) fn clear_routed_bit(masks: &[AtomicU64], shard: usize, replica: usize) {
    masks[shard].fetch_and(!(1u64 << replica), Ordering::AcqRel);
}

/// Failover counters of one session, owned by the session (not the
/// router) so they stay readable — and bumpable by the collector's
/// drain-time abandons — after shutdown dropped the router and its
/// queue senders.
#[derive(Debug, Default)]
pub(crate) struct RouterStats {
    /// Successful failover re-dispatches.
    pub failovers: AtomicUsize,
    /// (query, shard) partials abandoned because no live replica was
    /// left to re-dispatch to.
    pub abandoned: AtomicUsize,
}

impl RouterStats {
    pub fn failovers(&self) -> usize {
        self.failovers.load(Ordering::Relaxed)
    }

    pub fn abandoned(&self) -> usize {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// Book a partial abandoned for lack of live replicas.
    pub fn count_abandoned(&self) {
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }
}

/// The session-lived router: owns the query senders of every lane,
/// picks a replica per shard per query, and writes each ticket's
/// dispatch masks — the routing table the collector's quota accounting
/// and the failover scan read. Dropping the router closes every
/// replica's queue (session shutdown).
pub(crate) struct Router {
    topo: Arc<Topology>,
    /// `[shard][replica]` query senders.
    txs: Vec<Vec<GatedSender<Job>>>,
    lanes: Arc<Vec<Vec<LaneState>>>,
    policy: RoutePolicy,
    /// Per-shard round-robin cursors.
    rr: Vec<AtomicUsize>,
    /// Draw counter for the stateless p2c sampler.
    rng_seq: AtomicU64,
    rng_seed: u64,
    /// Session-owned failover counters.
    stats: Arc<RouterStats>,
    /// Queue receivers per replica this session spawned — 1 since the
    /// reactor redesign (the dead-lane check: once `LaneState::exited`
    /// reaches it, the lane's queue has no receivers left).
    exiters_per_replica: usize,
    /// The session epoch, for stamping each ticket's `routed` trace
    /// timestamp on the same clock as every other stage.
    epoch: Instant,
}

impl Router {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        topo: Arc<Topology>,
        txs: Vec<Vec<GatedSender<Job>>>,
        lanes: Arc<Vec<Vec<LaneState>>>,
        policy: RoutePolicy,
        seed: u64,
        stats: Arc<RouterStats>,
        exiters_per_replica: usize,
        epoch: Instant,
    ) -> Self {
        let num_shards = topo.num_shards();
        assert!(topo.replicas_per_shard() <= MAX_REPLICAS);
        Self {
            topo,
            txs,
            lanes,
            policy,
            rr: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
            rng_seq: AtomicU64::new(0),
            rng_seed: seed,
            stats,
            exiters_per_replica,
            epoch,
        }
    }

    /// The routing policy this session dispatches under.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// True when the lane must not be sent to: the replica is fenced
    /// (durably, or latched for this session — a replica fenced and
    /// later unfenced mid-session is dead until the next session
    /// start), or the lane's reactor has already exited (its queue has
    /// no receivers left, so a send would panic on the disconnected
    /// channel).
    fn unavailable(&self, shard: usize, replica: usize) -> bool {
        let lane = &self.lanes[shard][replica];
        self.topo.is_down(shard, replica)
            || lane.fenced.load(Ordering::SeqCst)
            || lane.exited.load(Ordering::SeqCst) >= self.exiters_per_replica
    }

    fn no_live_overload(&self, shard: usize) -> Overload {
        Overload {
            shard,
            depth: 0,
            queued_bytes: 0,
            retry_after: Overload::MAX_RETRY_AFTER,
        }
    }

    /// Pick a live replica of `shard` per the policy (`exclude`: the
    /// replica a failover is fleeing). None when the shard has no
    /// eligible replica. The live set is gathered into a stack buffer —
    /// this runs once per query per shard, no heap traffic.
    fn select(&self, shard: usize, exclude: Option<usize>) -> Option<usize> {
        let mut buf = [0usize; MAX_REPLICAS];
        let mut n = 0;
        for r in 0..self.topo.replicas_per_shard() {
            if Some(r) != exclude && !self.unavailable(shard, r) {
                buf[n] = r;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let live = &buf[..n];
        Some(match self.policy {
            RoutePolicy::RoundRobin | RoutePolicy::Broadcast => {
                let cursor = self.rr[shard].fetch_add(1, Ordering::Relaxed);
                round_robin_pick(live, cursor)
            }
            RoutePolicy::PowerOfTwoChoices => {
                let seq = self.rng_seq.fetch_add(2, Ordering::Relaxed);
                let a = splitmix64(self.rng_seed ^ seq);
                let b = splitmix64(self.rng_seed ^ (seq + 1));
                power_of_two_pick(live, |r| self.txs[shard][r].depth(), a, b)
            }
        })
    }

    /// Reserve one slot of `cost` bytes on a live replica of `shard`.
    /// On success the lane's `routes` guard is **held**: the caller
    /// must follow with [`Router::send_reserved`] or
    /// [`Router::unreserve`], both of which release it.
    fn reserve_on_shard(&self, shard: usize, cost: usize) -> Result<usize, Overload> {
        loop {
            let Some(r) = self.select(shard, None) else {
                return Err(self.no_live_overload(shard));
            };
            let lane = &self.lanes[shard][r];
            lane.routes.fetch_add(1, Ordering::SeqCst);
            if self.unavailable(shard, r) {
                // Lost the race against a fence (or the lane's reactor
                // exit): back off and re-select (the quiesce in the
                // reactor exit path waits for this counter, so the
                // window is bounded).
                lane.routes.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            return match self.txs[shard][r].reserve(cost) {
                Ok(()) => Ok(r),
                Err(e) => {
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    Err(e)
                }
            };
        }
    }

    fn send_reserved(&self, job: Job, shard: usize, replica: usize, cost: usize) {
        self.txs[shard][replica].send_reserved(job, cost);
        self.lanes[shard][replica]
            .routes
            .fetch_sub(1, Ordering::SeqCst);
    }

    fn unreserve(&self, shard: usize, replica: usize, cost: usize) {
        self.txs[shard][replica].unreserve(cost);
        self.lanes[shard][replica]
            .routes
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// All-or-nothing fan-out of one query: reserve a slot on one
    /// replica per shard (every live replica per shard under broadcast)
    /// or shed on the first shard that cannot admit it, rolling earlier
    /// reservations back. On success the full dispatch set is written
    /// to the ticket's `masks` before the first job is sent, so any
    /// partial the collector receives can resolve its quota.
    pub fn try_fanout(
        &self,
        qid: u64,
        point: &Arc<[f32]>,
        masks: &[AtomicU64],
        cost: usize,
        routed: &AtomicU64,
    ) -> Result<(), Overload> {
        let num_shards = self.topo.num_shards();
        let mut picked: Vec<(usize, usize)> = Vec::with_capacity(num_shards);
        let rollback = |picked: &[(usize, usize)]| {
            for &(ps, pr) in picked {
                self.unreserve(ps, pr, cost);
            }
        };
        for s in 0..num_shards {
            if self.policy == RoutePolicy::Broadcast {
                let before = picked.len();
                for r in 0..self.topo.replicas_per_shard() {
                    if self.unavailable(s, r) {
                        continue;
                    }
                    let lane = &self.lanes[s][r];
                    lane.routes.fetch_add(1, Ordering::SeqCst);
                    // Re-check under the routes guard (same handshake as
                    // `reserve_on_shard`): a replica fenced between the
                    // first check and here must not be sent to — its
                    // reactor may already be gone.
                    if self.unavailable(s, r) {
                        lane.routes.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    match self.txs[s][r].reserve(cost) {
                        Ok(()) => picked.push((s, r)),
                        Err(e) => {
                            lane.routes.fetch_sub(1, Ordering::SeqCst);
                            rollback(&picked);
                            return Err(e);
                        }
                    }
                }
                if picked.len() == before {
                    rollback(&picked);
                    return Err(self.no_live_overload(s));
                }
            } else {
                match self.reserve_on_shard(s, cost) {
                    Ok(r) => picked.push((s, r)),
                    Err(e) => {
                        rollback(&picked);
                        return Err(e);
                    }
                }
            }
        }
        // Publish the dispatch set, then send. (Fan-out is attempted at
        // most once per ticket per admission decision and rolled back
        // wholesale on failure, so the cells are 0 here.)
        for &(s, r) in &picked {
            masks[s].fetch_or(1u64 << r, Ordering::AcqRel);
        }
        // Routing decided: stamp the ticket's trace timestamp before the
        // first job is sent, so a shard service window never precedes it
        // except by genuine cross-thread clock slop.
        routed.store(
            self.epoch.elapsed().as_secs_f64().to_bits(),
            Ordering::Release,
        );
        for (s, r) in picked {
            self.send_reserved(
                Job {
                    qid,
                    point: Arc::clone(point),
                },
                s,
                r,
                cost,
            );
        }
        Ok(())
    }

    /// Failover: re-dispatch the query's partial for `shard` away from
    /// the fenced `dead` replica, **blocking** on admission (a failover
    /// op was admitted once already — turning it into a shed would make
    /// every fence a shed storm). Returns the sibling that took it, or
    /// `None` when the shard has no live replica left (the caller
    /// books an empty partial so the query still completes).
    ///
    /// The wait re-selects on every probe, so a sibling that is itself
    /// fenced mid-wait is abandoned instead of spun on forever (its
    /// frozen queue would never drain). Probes use the non-shed-
    /// counting reserve: a full sibling is backpressure here, not an
    /// outcome.
    pub fn redispatch(
        &self,
        qid: u64,
        point: &Arc<[f32]>,
        masks: &[AtomicU64],
        shard: usize,
        dead: usize,
    ) -> Option<usize> {
        loop {
            let r = self.select(shard, Some(dead))?;
            let lane = &self.lanes[shard][r];
            lane.routes.fetch_add(1, Ordering::SeqCst);
            if self.unavailable(shard, r) {
                lane.routes.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            match self.txs[shard][r].reserve_uncounted(0) {
                Ok(()) => {
                    // Swap the dead replica's bit for the sibling's
                    // (single-writer here: dispatch finished with this
                    // ticket's masks before the quiesce let the scan
                    // run, and the scan runs on the collector thread).
                    let old = masks[shard].load(Ordering::Acquire);
                    masks[shard].store((old & !(1u64 << dead)) | (1u64 << r), Ordering::Release);
                    self.txs[shard][r].send_reserved(
                        Job {
                            qid,
                            point: Arc::clone(point),
                        },
                        0,
                    );
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    return Some(r);
                }
                Err(_) => {
                    lane.routes.fetch_sub(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_over_live() {
        let live = [0usize, 2, 3];
        let picks: Vec<usize> = (0..6).map(|c| round_robin_pick(&live, c)).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn power_of_two_prefers_shorter_queue() {
        let live = [0usize, 1];
        let depths = [10usize, 2];
        // Draws selecting (0, 1): depth 2 < 10 → replica 1.
        assert_eq!(power_of_two_pick(&live, |r| depths[r], 0, 1), 1);
        // Draws selecting (1, 0): still replica 1 (first sample wins
        // only ties).
        assert_eq!(power_of_two_pick(&live, |r| depths[r], 1, 0), 1);
        // Tie: first sample wins.
        assert_eq!(power_of_two_pick(&live, |_| 5, 1, 0), 1);
        assert_eq!(power_of_two_pick(&live, |_| 5, 0, 1), 0);
    }

    #[test]
    fn splitmix_spreads_sequential_seeds() {
        // Sequential inputs must not collapse onto one replica: over a
        // window of draws, both parities appear.
        let parities: std::collections::HashSet<u64> =
            (0..16u64).map(|i| splitmix64(i) % 2).collect();
        assert_eq!(parities.len(), 2);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn ticket_masks_quota_arithmetic() {
        let masks: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        assert_eq!(quota(&masks, 0), 0);
        masks[0].store(0b101, Ordering::Release);
        masks[1].store(0b010, Ordering::Release);
        assert_eq!(quota(&masks, 0), 2);
        assert_eq!(quota(&masks, 1), 1);
        assert!(is_routed_to(&masks, 0, 0));
        assert!(!is_routed_to(&masks, 0, 1));
        clear_routed_bit(&masks, 0, 2);
        assert_eq!(quota(&masks, 0), 1);
        assert!(!is_routed_to(&masks, 0, 2));
    }
}
