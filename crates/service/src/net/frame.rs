//! The wire codec: length-prefixed binary frames over TCP.
//!
//! Every frame on the wire is
//!
//! ```text
//! ┌────────────┬─────────┬──────┬───────────┬──────────────┬─────────┐
//! │ len u32 LE │ ver u8  │ kind │ tenant    │ correlation  │ payload │
//! │ (body len) │ (=1)    │ u8   │ u16 LE    │ u64 LE       │ …       │
//! └────────────┴─────────┴──────┴───────────┴──────────────┴─────────┘
//!               ←───────────────── body (len bytes) ────────────────→
//! ```
//!
//! `len` counts the body (header + payload, excluding the prefix
//! itself) and is capped at [`MAX_FRAME`]; an oversized prefix is a
//! typed decode error, not an allocation. The 12-byte body header
//! carries the protocol version, the frame kind, the **tenant id**
//! (selects the server-side admission budget) and a caller-chosen
//! **correlation id** echoed verbatim on the response — responses may
//! arrive out of order under pipelining, and the correlation id is how
//! a client matches them back up.
//!
//! Request and response kinds live in disjoint byte ranges (responses
//! have the high bit set) so a peer speaking the wrong direction is a
//! typed [`FrameError::UnknownKind`], never a misparse. All integers
//! are little-endian; points are `f32` bit patterns, so a query round
//! trips bit-exactly (NaN payloads included).
//!
//! Decoding never panics and never trusts a length field beyond the
//! already-bounded body: every multi-byte read is checked, trailing
//! bytes are an error, and element counts are validated against the
//! remaining byte budget before any allocation.

use crate::metrics::OpStatus;
use std::io::{self, Read, Write};

/// Version byte every frame leads with. Peers reject other versions
/// with [`ErrorCode::BadVersion`] (server) or an error result (client).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame **body** (header + payload) in bytes. Caps
/// decode-side allocation: a length prefix beyond this is rejected
/// before any buffer is sized from it. Generous enough for a ~64k-dim
/// point or a several-thousand-point batch.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of body header (version, kind, tenant, correlation).
pub const HEADER_LEN: usize = 12;

const REQ_PING: u8 = 0x01;
const REQ_QUERY: u8 = 0x02;
const REQ_QUERY_BATCH: u8 = 0x03;
const REQ_INSERT: u8 = 0x04;
const REQ_DELETE: u8 = 0x05;
const REQ_METRICS: u8 = 0x06;

const RSP_PONG: u8 = 0x81;
const RSP_NEIGHBORS: u8 = 0x82;
const RSP_BATCH: u8 = 0x83;
const RSP_WRITE: u8 = 0x84;
const RSP_METRICS: u8 = 0x85;
const RSP_ERROR: u8 = 0xEE;

/// One batch member's outcome: its [`OpStatus`] and (possibly empty)
/// merged top-k, `(global id, distance)` pairs distance-ascending.
pub type BatchMember = (OpStatus, Vec<(u32, f32)>);

/// Decoded body header: the fields every frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version byte ([`PROTOCOL_VERSION`] on every frame this
    /// codec emits).
    pub version: u8,
    /// Tenant namespace the request is billed to (servers map it to a
    /// per-tenant admission budget; echoed on responses).
    pub tenant: u16,
    /// Caller-chosen id echoed on the matching response.
    pub corr: u64,
}

/// One client→server request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// One k-NN query.
    Query {
        /// The query point.
        point: Vec<f32>,
    },
    /// A batch of same-dimension queries, answered as one
    /// [`Response::Batch`] (member order preserved).
    QueryBatch {
        /// Dimensions per point.
        dim: u32,
        /// `count × dim` coordinates, point-major.
        points: Vec<f32>,
    },
    /// Insert one point (the server mints the global id, returned in
    /// [`Response::Write`]).
    Insert {
        /// The point to insert.
        point: Vec<f32>,
    },
    /// Delete one global id.
    Delete {
        /// The target id.
        id: u32,
    },
    /// Request a [`Response::Metrics`] JSON snapshot.
    Metrics,
}

/// One server→client response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A served query's merged top-k.
    Neighbors {
        /// `(global id, distance)` pairs, distance ascending.
        neighbors: Vec<(u32, f32)>,
    },
    /// A served batch: one `(status, top-k)` per input point, in input
    /// order. Shed members carry [`OpStatus::Shed`] and an empty list
    /// (per-member admission is in-band here; only whole-frame problems
    /// get an [`Response::Error`]).
    Batch {
        /// Per-member outcome.
        members: Vec<BatchMember>,
    },
    /// A processed write.
    Write {
        /// Whether the updater applied the op.
        applied: bool,
        /// Minted id (inserts) or target id (deletes), when known.
        id: Option<u32>,
    },
    /// The export-schema JSON snapshot ([`crate::export::report_json`]).
    Metrics {
        /// The serialized report.
        json: String,
    },
    /// A typed failure: the op's [`OpStatus`] plus the admission
    /// `retry_after` hint in seconds (0 when not an overload;
    /// `f64::INFINITY` for terminal rejections such as a closed
    /// session).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Op status the failure maps to ([`OpStatus::Shed`] for
        /// admission rejections).
        status: OpStatus,
        /// Backoff hint in seconds.
        retry_after: f64,
    },
}

/// Failure classes a server reports in [`Response::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission shed the op; honor `retry_after`.
    Overloaded = 1,
    /// The frame body did not decode (bad payload, trailing bytes).
    BadFrame = 2,
    /// The version byte was not [`PROTOCOL_VERSION`].
    BadVersion = 3,
    /// The kind byte named no known request.
    UnknownKind = 4,
    /// The session behind the server is shut down (terminal;
    /// `retry_after` is infinite).
    Closed = 5,
    /// The length prefix exceeded [`MAX_FRAME`].
    TooLarge = 6,
}

impl ErrorCode {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::Overloaded,
            2 => Self::BadFrame,
            3 => Self::BadVersion,
            4 => Self::UnknownKind,
            5 => Self::Closed,
            6 => Self::TooLarge,
            _ => return None,
        })
    }
}

/// Typed decode failure. Carries enough to answer with a precise
/// [`Response::Error`] — or to decide the stream is unrecoverable
/// (oversized/short prefix) and disconnect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Body shorter than the fixed header, or a payload read ran off
    /// the end.
    Truncated,
    /// Bytes left over after the payload decoded.
    TrailingBytes,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Unknown kind byte.
    UnknownKind(u8),
    /// Length prefix beyond [`MAX_FRAME`].
    Oversized(usize),
    /// Structurally invalid payload (e.g. batch size not a multiple of
    /// its dimension).
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::TrailingBytes => write!(f, "trailing bytes after payload"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#x}"),
            Self::Oversized(n) => write!(f, "frame body of {n} bytes exceeds {MAX_FRAME}"),
            Self::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------- encode

fn put_header(out: &mut Vec<u8>, kind: u8, tenant: u16, corr: u64) {
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&corr.to_le_bytes());
}

fn put_points(out: &mut Vec<u8>, points: &[f32]) {
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for p in points {
        out.extend_from_slice(&p.to_bits().to_le_bytes());
    }
}

fn put_neighbors(out: &mut Vec<u8>, neighbors: &[(u32, f32)]) {
    out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
    for &(id, d) in neighbors {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&d.to_bits().to_le_bytes());
    }
}

/// Encode one request as a complete wire frame (length prefix
/// included) appended to `out`.
pub fn encode_request(tenant: u16, corr: u64, req: &Request, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]); // length prefix, patched below
    match req {
        Request::Ping => put_header(out, REQ_PING, tenant, corr),
        Request::Query { point } => {
            put_header(out, REQ_QUERY, tenant, corr);
            put_points(out, point);
        }
        Request::QueryBatch { dim, points } => {
            put_header(out, REQ_QUERY_BATCH, tenant, corr);
            out.extend_from_slice(&dim.to_le_bytes());
            put_points(out, points);
        }
        Request::Insert { point } => {
            put_header(out, REQ_INSERT, tenant, corr);
            put_points(out, point);
        }
        Request::Delete { id } => {
            put_header(out, REQ_DELETE, tenant, corr);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Metrics => put_header(out, REQ_METRICS, tenant, corr),
    }
    let body = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&body.to_le_bytes());
}

/// Encode one response as a complete wire frame appended to `out`.
pub fn encode_response(tenant: u16, corr: u64, rsp: &Response, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]);
    match rsp {
        Response::Pong => put_header(out, RSP_PONG, tenant, corr),
        Response::Neighbors { neighbors } => {
            put_header(out, RSP_NEIGHBORS, tenant, corr);
            put_neighbors(out, neighbors);
        }
        Response::Batch { members } => {
            put_header(out, RSP_BATCH, tenant, corr);
            out.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for (status, neighbors) in members {
                out.push(match status {
                    OpStatus::Ok => 0,
                    OpStatus::Shed => 1,
                });
                put_neighbors(out, neighbors);
            }
        }
        Response::Write { applied, id } => {
            put_header(out, RSP_WRITE, tenant, corr);
            out.push(u8::from(*applied));
            match id {
                Some(id) => {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                None => out.push(0),
            }
        }
        Response::Metrics { json } => {
            put_header(out, RSP_METRICS, tenant, corr);
            out.extend_from_slice(&(json.len() as u32).to_le_bytes());
            out.extend_from_slice(json.as_bytes());
        }
        Response::Error {
            code,
            status,
            retry_after,
        } => {
            put_header(out, RSP_ERROR, tenant, corr);
            out.push(*code as u8);
            out.push(match status {
                OpStatus::Ok => 0,
                OpStatus::Shed => 1,
            });
            out.extend_from_slice(&retry_after.to_bits().to_le_bytes());
        }
    }
    let body = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&body.to_le_bytes());
}

// ---------------------------------------------------------------- decode

/// Checked little-endian cursor over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.at < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validate an element count against the bytes actually left, so a
    /// hostile count cannot drive allocation past the (already bounded)
    /// body size.
    fn checked_count(&self, n: u32, elem_bytes: usize) -> Result<usize, FrameError> {
        let n = n as usize;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.at {
            return Err(FrameError::Truncated);
        }
        Ok(n)
    }

    fn points(&mut self) -> Result<Vec<f32>, FrameError> {
        let n = self.u32()?;
        let n = self.checked_count(n, 4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn neighbors(&mut self) -> Result<Vec<(u32, f32)>, FrameError> {
        let n = self.u32()?;
        let n = self.checked_count(n, 8)?;
        (0..n).map(|_| Ok((self.u32()?, self.f32()?))).collect()
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

fn decode_header(c: &mut Cursor<'_>) -> Result<(FrameHeader, u8), FrameError> {
    let version = c.u8()?;
    let kind = c.u8()?;
    let tenant = c.u16()?;
    let corr = c.u64()?;
    if version != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    Ok((
        FrameHeader {
            version,
            tenant,
            corr,
        },
        kind,
    ))
}

/// Decode one request body (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<(FrameHeader, Request), FrameError> {
    let mut c = Cursor { buf: body, at: 0 };
    let (h, kind) = decode_header(&mut c)?;
    let req = match kind {
        REQ_PING => Request::Ping,
        REQ_QUERY => Request::Query { point: c.points()? },
        REQ_QUERY_BATCH => {
            let dim = c.u32()?;
            let points = c.points()?;
            if dim == 0 || points.len() % dim as usize != 0 {
                return Err(FrameError::BadPayload("batch length not a multiple of dim"));
            }
            Request::QueryBatch { dim, points }
        }
        REQ_INSERT => Request::Insert { point: c.points()? },
        REQ_DELETE => Request::Delete { id: c.u32()? },
        REQ_METRICS => Request::Metrics,
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.finish()?;
    Ok((h, req))
}

/// Decode one response body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<(FrameHeader, Response), FrameError> {
    let mut c = Cursor { buf: body, at: 0 };
    let (h, kind) = decode_header(&mut c)?;
    let rsp = match kind {
        RSP_PONG => Response::Pong,
        RSP_NEIGHBORS => Response::Neighbors {
            neighbors: c.neighbors()?,
        },
        RSP_BATCH => {
            let n = c.u32()?;
            // Each member is at least a status byte + a count word.
            let n = c.checked_count(n, 5)?;
            let members = (0..n)
                .map(|_| {
                    let status = match c.u8()? {
                        0 => OpStatus::Ok,
                        1 => OpStatus::Shed,
                        _ => return Err(FrameError::BadPayload("bad status byte")),
                    };
                    Ok((status, c.neighbors()?))
                })
                .collect::<Result<_, _>>()?;
            Response::Batch { members }
        }
        RSP_WRITE => {
            let applied = c.u8()? != 0;
            let id = match c.u8()? {
                0 => None,
                1 => Some(c.u32()?),
                _ => return Err(FrameError::BadPayload("bad id presence byte")),
            };
            Response::Write { applied, id }
        }
        RSP_METRICS => {
            let n = c.u32()?;
            let n = c.checked_count(n, 1)?;
            let bytes = c.take(n)?;
            Response::Metrics {
                json: String::from_utf8(bytes.to_vec())
                    .map_err(|_| FrameError::BadPayload("metrics not UTF-8"))?,
            }
        }
        RSP_ERROR => {
            let code =
                ErrorCode::from_byte(c.u8()?).ok_or(FrameError::BadPayload("bad error code"))?;
            let status = match c.u8()? {
                0 => OpStatus::Ok,
                1 => OpStatus::Shed,
                _ => return Err(FrameError::BadPayload("bad status byte")),
            };
            Response::Error {
                code,
                status,
                retry_after: c.f64()?,
            }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.finish()?;
    Ok((h, rsp))
}

// ------------------------------------------------------------------ I/O

/// Result of pulling one frame body off a stream.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete body (header + payload, length prefix stripped).
    Body(Vec<u8>),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The length prefix exceeded [`MAX_FRAME`] — the stream cannot be
    /// resynchronized; answer with [`ErrorCode::TooLarge`] and drop it.
    Oversized(usize),
}

/// Read exactly one length-prefixed frame body. EOF before the first
/// prefix byte is a clean close; EOF anywhere inside a frame is an
/// `UnexpectedEof` error (a peer died mid-frame).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<ReadFrame> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ReadFrame::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame length prefix",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Ok(ReadFrame::Oversized(len));
    }
    if len < HEADER_LEN {
        // Too short to even carry a header; surface as a body the
        // decoder will reject with `Truncated` (keeps the error typed).
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        return Ok(ReadFrame::Body(body));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(ReadFrame::Body(body))
}

/// Write pre-encoded frame bytes, handling interrupts.
pub fn write_all<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_request(req: Request) {
        let mut wire = Vec::new();
        encode_request(7, 42, &req, &mut wire);
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4);
        let (h, back) = decode_request(&wire[4..]).expect("round trip");
        assert_eq!(h.tenant, 7);
        assert_eq!(h.corr, 42);
        assert_eq!(back, req);
    }

    #[test]
    fn request_round_trips() {
        rt_request(Request::Ping);
        rt_request(Request::Metrics);
        rt_request(Request::Query {
            point: vec![1.5, -2.25, 0.0],
        });
        rt_request(Request::QueryBatch {
            dim: 2,
            points: vec![1.0, 2.0, 3.0, 4.0],
        });
        rt_request(Request::Insert { point: vec![0.5] });
        rt_request(Request::Delete { id: 31337 });
    }

    #[test]
    fn response_round_trips() {
        let cases = [
            Response::Pong,
            Response::Neighbors {
                neighbors: vec![(3, 0.25), (9, 1.5)],
            },
            Response::Batch {
                members: vec![(OpStatus::Ok, vec![(1, 0.5)]), (OpStatus::Shed, Vec::new())],
            },
            Response::Write {
                applied: true,
                id: Some(12),
            },
            Response::Write {
                applied: false,
                id: None,
            },
            Response::Metrics {
                json: "{\"x\":1}".to_string(),
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                status: OpStatus::Shed,
                retry_after: 0.005,
            },
        ];
        for rsp in cases {
            let mut wire = Vec::new();
            encode_response(2, 99, &rsp, &mut wire);
            let (h, back) = decode_response(&wire[4..]).expect("round trip");
            assert_eq!(h.corr, 99);
            assert_eq!(back, rsp);
        }
    }

    #[test]
    fn bad_version_is_typed() {
        let mut wire = Vec::new();
        encode_request(0, 0, &Request::Ping, &mut wire);
        wire[4] = 9; // version byte
        assert_eq!(decode_request(&wire[4..]), Err(FrameError::BadVersion(9)));
    }

    #[test]
    fn unknown_kind_is_typed() {
        let mut wire = Vec::new();
        encode_request(0, 0, &Request::Ping, &mut wire);
        wire[5] = 0x7F;
        assert_eq!(
            decode_request(&wire[4..]),
            Err(FrameError::UnknownKind(0x7F))
        );
        // A response kind fed to the request decoder is equally typed.
        let mut rsp = Vec::new();
        encode_response(0, 0, &Response::Pong, &mut rsp);
        assert_eq!(
            decode_request(&rsp[4..]),
            Err(FrameError::UnknownKind(RSP_PONG))
        );
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut wire = Vec::new();
        encode_request(
            1,
            2,
            &Request::Query {
                point: vec![1.0, 2.0],
            },
            &mut wire,
        );
        // Truncate inside the payload.
        assert_eq!(
            decode_request(&wire[4..wire.len() - 3]),
            Err(FrameError::Truncated)
        );
        // Trailing garbage after a valid payload.
        wire.push(0xAB);
        assert_eq!(decode_request(&wire[4..]), Err(FrameError::TrailingBytes));
        // Shorter than the header at all.
        assert_eq!(decode_request(&[1, 2]), Err(FrameError::Truncated));
    }

    #[test]
    fn hostile_count_cannot_overallocate() {
        // A query frame claiming u32::MAX points with a 4-byte payload:
        // the count check fails before any allocation happens.
        let mut wire = Vec::new();
        encode_request(0, 0, &Request::Ping, &mut wire);
        wire[5] = REQ_QUERY;
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let body = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&body.to_le_bytes());
        assert_eq!(decode_request(&wire[4..]), Err(FrameError::Truncated));
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        use std::io::Cursor as IoCursor;
        // Clean close at a boundary.
        let mut empty = IoCursor::new(Vec::new());
        assert!(matches!(read_frame(&mut empty).unwrap(), ReadFrame::Closed));
        // EOF inside the prefix.
        let mut short = IoCursor::new(vec![1u8, 2]);
        assert!(read_frame(&mut short).is_err());
        // EOF inside the body.
        let mut wire = Vec::new();
        encode_request(0, 0, &Request::Ping, &mut wire);
        wire.truncate(wire.len() - 2);
        let mut mid = IoCursor::new(wire);
        assert!(read_frame(&mut mid).is_err());
        // Oversized prefix is typed, not allocated.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        let mut over = IoCursor::new(huge);
        assert!(matches!(
            read_frame(&mut over).unwrap(),
            ReadFrame::Oversized(_)
        ));
    }
}
