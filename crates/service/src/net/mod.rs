//! The network serving tier: TCP framing, a pipelined server, and a
//! socket client mirroring [`Client`].
//!
//! Everything below PR 5's session API is in-process; this module puts
//! a real protocol in front of it with **zero new dependencies** —
//! `std::net` TCP, the vendored channel, and the [`frame`] codec.
//!
//! # Server anatomy
//!
//! [`NetServer::spawn`] binds a listener and starts one acceptor
//! thread. Each accepted connection gets exactly two threads:
//!
//! * a **reader** that pulls length-prefixed frames off the socket,
//!   decodes them, and submits each op through the session's
//!   non-blocking [`Client`] — one in-flight frame maps 1:1 onto one
//!   [`QueryTicket`]/[`WriteTicket`], so wire pipelining *is* session
//!   pipelining;
//! * a **completion pump**, the connection's sole socket writer, which
//!   multiplexes over the connection's outstanding tickets via the
//!   slot-notify channel and writes each response as its ticket
//!   resolves — out of order, matched back up by the frame's
//!   correlation id.
//!
//! The reader stamps a [`NetStage`] (frame received → decoded) into
//! every submission, so PR 6 trace spans telescope from the first
//! socket byte, not from session admission.
//!
//! # Multi-tenancy
//!
//! The frame header's tenant id selects a per-tenant [`Client`] minted
//! lazily with [`NetServerConfig::per_tenant_inflight`] as its
//! fairness cap. All connections of a tenant share that client's
//! in-flight gauge, so the cap bounds the *tenant*, not the socket: a
//! flooding tenant sheds its own traffic (typed
//! [`Response::Error`] frames with `retry_after`) while others keep
//! their budget.
//!
//! # Dying connections
//!
//! A connection that disappears mid-flight must not leak: its tickets
//! are already in the session registry, and the collector resolves
//! them regardless. The pump simply keeps draining notifications; once
//! the peer is unreachable it counts each undeliverable response as an
//! **orphaned ticket** instead of writing it. Nothing blocks the
//! collector (slot notification is non-blocking by construction), the
//! registry returns to empty on its own, and the pump exits when the
//! last notify sender — reader's plus one per outstanding ticket — is
//! gone. [`NetServer::shutdown`] drains the other way: it stops the
//! acceptor, half-closes every connection's read side so readers see
//! EOF, and joins the pumps, which flush every response already owed.

pub mod frame;

mod client;

pub use client::{NetClient, NetQueryReply, NetWriteReply};

use crate::export::report_json;
use crate::metrics::OpStatus;
use crate::service::ServiceReport;
use crate::session::{
    Client, QueryResult, QueryTicket, Session, WriteOp, WriteResult, WriteTicket,
};
use crate::trace::NetStage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use frame::{
    decode_request, encode_response, read_frame, ErrorCode, ReadFrame, Request, Response,
    HEADER_LEN,
};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Net-tier counters, reported through
/// [`ServiceReport::net`](crate::service::ServiceReport::net) and the
/// schema-v3 JSON exporter. All monotonic except `connections_peak`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Connections the acceptor handed to a reader/pump pair.
    pub connections_accepted: u64,
    /// Connections that ended **uncleanly**: the peer vanished
    /// mid-frame or responses became undeliverable. A clean close at a
    /// frame boundary with every response delivered does not count.
    pub connections_dropped: u64,
    /// High-water mark of simultaneously live connections.
    pub connections_peak: u64,
    /// Request frames fully read off sockets (decodable or not).
    pub frames_in: u64,
    /// Response frames fully written to sockets.
    pub frames_out: u64,
    /// Frames that failed to decode or validate (bad version, unknown
    /// kind, truncation, oversize, dimension mismatch).
    pub frame_decode_errors: u64,
    /// Tickets that resolved after their connection became
    /// unreachable: the result was discarded instead of written. The
    /// session-side registry entry is still reclaimed — orphaned means
    /// undeliverable, never leaked.
    pub tickets_orphaned: u64,
}

impl NetCounters {
    /// Interval slice: monotonic counters subtract; `connections_peak`
    /// keeps the current cumulative value (same convention as the
    /// report's `peak_queue_depth`).
    pub fn minus(&self, prev: &Self) -> Self {
        Self {
            connections_accepted: self.connections_accepted - prev.connections_accepted,
            connections_dropped: self.connections_dropped - prev.connections_dropped,
            connections_peak: self.connections_peak,
            frames_in: self.frames_in - prev.frames_in,
            frames_out: self.frames_out - prev.frames_out,
            frame_decode_errors: self.frame_decode_errors - prev.frame_decode_errors,
            tickets_orphaned: self.tickets_orphaned - prev.tickets_orphaned,
        }
    }
}

/// Live atomics behind [`NetCounters`].
#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    dropped: AtomicU64,
    live: AtomicU64,
    peak: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    orphaned: AtomicU64,
}

impl NetStats {
    fn conn_open(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(1, Ordering::AcqRel) + 1;
        self.peak.fetch_max(live, Ordering::AcqRel);
    }

    fn conn_close(&self, unclean: bool) {
        self.live.fetch_sub(1, Ordering::AcqRel);
        if unclean {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> NetCounters {
        NetCounters {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_dropped: self.dropped.load(Ordering::Relaxed),
            connections_peak: self.peak.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            frame_decode_errors: self.decode_errors.load(Ordering::Relaxed),
            tickets_orphaned: self.orphaned.load(Ordering::Relaxed),
        }
    }
}

/// Configuration for [`NetServer::spawn`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Listen address. The default binds an ephemeral loopback port —
    /// read the real one back with [`NetServer::addr`].
    pub bind_addr: String,
    /// Per-**tenant** in-flight query cap (the net-tier analogue of
    /// [`ServiceConfig::per_client_inflight`]): all connections
    /// presenting the same tenant id share one admission gauge, so one
    /// tenant's flood sheds only its own traffic. `usize::MAX` (the
    /// default) disables the cap.
    ///
    /// [`ServiceConfig::per_client_inflight`]: crate::service::ServiceConfig::per_client_inflight
    pub per_tenant_inflight: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        Self {
            bind_addr: "127.0.0.1:0".to_string(),
            per_tenant_inflight: usize::MAX,
        }
    }
}

/// Sentinel "there is outbox work" message on the notify channel —
/// ticket ids are minted from 0 upward and can never reach it.
const WAKE: u64 = u64::MAX;

/// One queued-for-response in-flight op on a connection.
enum PendingOp {
    Query {
        tenant: u16,
        corr: u64,
        ticket: QueryTicket,
    },
    Write {
        tenant: u16,
        corr: u64,
        ticket: WriteTicket,
    },
    /// One member of a [`Request::QueryBatch`]; the batch answers with
    /// a single frame once every member resolved.
    Member {
        acc: Arc<BatchAcc>,
        index: usize,
        ticket: QueryTicket,
    },
}

/// Accumulator for one in-flight batch frame.
struct BatchAcc {
    tenant: u16,
    corr: u64,
    remaining: AtomicUsize,
    members: Mutex<Vec<Option<frame::BatchMember>>>,
}

/// State shared by one connection's reader and pump.
struct ConnShared {
    /// Ticket id → pending op. The reader inserts **while holding this
    /// lock across the submit call**, closing the race where a ticket
    /// resolves (and notifies) synchronously inside submission, before
    /// the pump could find its entry.
    pending: Mutex<HashMap<u64, PendingOp>>,
    /// Encoded response frames the reader wants written immediately
    /// (pong, metrics, error frames). The pump is the sole socket
    /// writer; a [`WAKE`] on the notify channel tells it to flush.
    outbox: Mutex<Vec<Vec<u8>>>,
    /// Socket is unusable for writes (peer died); responses resolving
    /// after this are counted as orphaned, not written.
    dead: AtomicBool,
}

/// State shared by the acceptor, every connection, and the handle.
struct ServerShared {
    /// Uncapped session client for clock reads and metrics snapshots.
    client: Client,
    per_tenant_inflight: usize,
    /// Tenant id → the tenant's capped client. Connections clone from
    /// here so a tenant's cap spans all its connections.
    tenants: Mutex<HashMap<u16, Client>>,
    stats: NetStats,
    closing: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<u64, ConnHandle>>,
}

impl ServerShared {
    fn metrics_json(&self) -> String {
        let mut rep = self.client.report();
        rep.net = self.stats.snapshot();
        report_json(&rep)
    }
}

struct ConnHandle {
    /// The accept-side stream; `shutdown(Read)` here unblocks the
    /// reader's blocking read with EOF (the drain signal).
    stream: TcpStream,
    reader: JoinHandle<()>,
    pump: JoinHandle<()>,
}

/// A running TCP front end over one [`Session`]. See the module docs
/// for the thread anatomy; [`NetServer::shutdown`] (or drop) drains
/// and joins everything. Does **not** own the session — shut that down
/// separately.
pub struct NetServer {
    inner: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `session` at
    /// [`NetServerConfig::bind_addr`].
    pub fn spawn(session: &Session, config: NetServerConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerShared {
            client: session.internal_client(),
            per_tenant_inflight: config.per_tenant_inflight,
            tenants: Mutex::new(HashMap::new()),
            stats: NetStats::default(),
            closing: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("net-accept".to_string())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if inner.closing.load(Ordering::Acquire) {
                                break;
                            }
                            spawn_conn(Arc::clone(&inner), stream);
                        }
                        Err(_) => {
                            if inner.closing.load(Ordering::Acquire) {
                                break;
                            }
                            // Transient (EMFILE, aborted handshake):
                            // keep accepting.
                        }
                    }
                })
                .expect("spawn acceptor")
        };
        Ok(NetServer {
            inner,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound listen address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Session report with [`ServiceReport::net`] filled from this
    /// server's live counters.
    ///
    /// [`ServiceReport::net`]: crate::service::ServiceReport::net
    pub fn metrics(&self) -> ServiceReport {
        let mut rep = self.inner.client.report();
        rep.net = self.inner.stats.snapshot();
        rep
    }

    /// Stop accepting, drain every connection (owed responses are
    /// flushed), join all threads, and return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.close();
        let mut rep = self.inner.client.report();
        rep.net = self.inner.stats.snapshot();
        rep
    }

    fn close(&mut self) {
        if self.inner.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it observes `closing` and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // With the acceptor joined, no new connections can appear.
        // Half-close each connection's read side: the reader sees EOF
        // at the next frame boundary and exits cleanly; the pump
        // drains every outstanding response, then follows.
        let conns: Vec<ConnHandle> = {
            let mut m = self.inner.conns.lock().unwrap();
            m.drain().map(|(_, v)| v).collect()
        };
        for c in &conns {
            let _ = c.stream.shutdown(Shutdown::Read);
        }
        for c in conns {
            let _ = c.reader.join();
            let _ = c.pump.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close();
    }
}

fn spawn_conn(shared: Arc<ServerShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let (rstream, wstream) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(r), Ok(w)) => (r, w),
        _ => return, // fd pressure; drop the connection
    };
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    shared.stats.conn_open();
    let conn = Arc::new(ConnShared {
        pending: Mutex::new(HashMap::new()),
        outbox: Mutex::new(Vec::new()),
        dead: AtomicBool::new(false),
    });
    let (ntx, nrx) = unbounded();
    let reader = {
        let shared = Arc::clone(&shared);
        let conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("net-read-{conn_id}"))
            .spawn(move || run_reader(&shared, &conn, rstream, ntx))
            .expect("spawn reader")
    };
    let pump = {
        let shared = Arc::clone(&shared);
        let conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("net-pump-{conn_id}"))
            .spawn(move || run_pump(&shared, &conn, wstream, nrx, conn_id))
            .expect("spawn pump")
    };
    shared.conns.lock().unwrap().insert(
        conn_id,
        ConnHandle {
            stream,
            reader,
            pump,
        },
    );
}

/// Best-effort tenant + correlation id recovery from an undecodable
/// body, so the error frame still routes to the right caller.
fn salvage_ids(body: &[u8]) -> (u16, u64) {
    if body.len() >= HEADER_LEN {
        (
            u16::from_le_bytes(body[2..4].try_into().unwrap()),
            u64::from_le_bytes(body[4..12].try_into().unwrap()),
        )
    } else {
        (0, 0)
    }
}

/// Queue an encoded response for the pump (the sole socket writer).
fn queue_response(conn: &ConnShared, ntx: &Sender<u64>, tenant: u16, corr: u64, rsp: &Response) {
    let mut buf = Vec::new();
    encode_response(tenant, corr, rsp, &mut buf);
    conn.outbox.lock().unwrap().push(buf);
    let _ = ntx.send(WAKE);
}

fn queue_error(
    conn: &ConnShared,
    ntx: &Sender<u64>,
    tenant: u16,
    corr: u64,
    code: ErrorCode,
    retry_after: f64,
) {
    queue_response(
        conn,
        ntx,
        tenant,
        corr,
        &Response::Error {
            code,
            status: OpStatus::Shed,
            retry_after,
        },
    );
}

/// The per-tenant client, through a connection-local cache (a
/// connection almost always speaks for one tenant) over the server's
/// shared mint-once map.
fn tenant_client<'a>(
    shared: &ServerShared,
    cache: &'a mut HashMap<u16, Client>,
    tenant: u16,
) -> &'a Client {
    cache.entry(tenant).or_insert_with(|| {
        shared
            .tenants
            .lock()
            .unwrap()
            .entry(tenant)
            .or_insert_with(|| shared.client.sibling_with_cap(shared.per_tenant_inflight))
            .clone()
    })
}

fn run_reader(
    shared: &ServerShared,
    conn: &Arc<ConnShared>,
    mut stream: TcpStream,
    ntx: Sender<u64>,
) {
    let dim = shared.client.dim();
    let mut tenants: HashMap<u16, Client> = HashMap::new();
    loop {
        let framed = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => {
                // Peer died mid-frame: nothing more can be delivered.
                conn.dead.store(true, Ordering::Release);
                break;
            }
        };
        let body = match framed {
            ReadFrame::Closed => break, // clean close: drain responses
            ReadFrame::Oversized(_) => {
                // The body was never read; the stream cannot be
                // resynchronized. Answer and disconnect.
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                queue_error(conn, &ntx, 0, 0, ErrorCode::TooLarge, 0.0);
                break;
            }
            ReadFrame::Body(b) => b,
        };
        shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
        let received = shared.client.now();
        let (hdr, req) = match decode_request(&body) {
            Ok(ok) => ok,
            Err(e) => {
                shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                let (tenant, corr) = salvage_ids(&body);
                let code = match e {
                    frame::FrameError::BadVersion(_) => ErrorCode::BadVersion,
                    frame::FrameError::UnknownKind(_) => ErrorCode::UnknownKind,
                    _ => ErrorCode::BadFrame,
                };
                queue_error(conn, &ntx, tenant, corr, code, 0.0);
                if matches!(e, frame::FrameError::BadVersion(_)) {
                    // Every further frame would fail the same way.
                    break;
                }
                continue;
            }
        };
        let decoded = shared.client.now();
        let net = Some(NetStage { received, decoded });
        match req {
            Request::Ping => queue_response(conn, &ntx, hdr.tenant, hdr.corr, &Response::Pong),
            Request::Metrics => {
                let json = shared.metrics_json();
                queue_response(
                    conn,
                    &ntx,
                    hdr.tenant,
                    hdr.corr,
                    &Response::Metrics { json },
                );
            }
            Request::Query { point } => {
                if point.len() != dim {
                    shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    queue_error(conn, &ntx, hdr.tenant, hdr.corr, ErrorCode::BadFrame, 0.0);
                    continue;
                }
                let client = tenant_client(shared, &mut tenants, hdr.tenant).clone();
                // Insert under the pending lock held across the
                // submit: a synchronous shed resolves (and notifies)
                // inside `submit_query`, and the pump must not consume
                // that notification before the entry exists.
                let mut pend = conn.pending.lock().unwrap();
                let ticket = client.submit_query(&point, Some(received), Some(ntx.clone()), net);
                pend.insert(
                    ticket.id(),
                    PendingOp::Query {
                        tenant: hdr.tenant,
                        corr: hdr.corr,
                        ticket,
                    },
                );
            }
            Request::QueryBatch { dim: bdim, points } => {
                if bdim as usize != dim {
                    shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    queue_error(conn, &ntx, hdr.tenant, hdr.corr, ErrorCode::BadFrame, 0.0);
                    continue;
                }
                let n = points.len() / dim;
                if n == 0 {
                    queue_response(
                        conn,
                        &ntx,
                        hdr.tenant,
                        hdr.corr,
                        &Response::Batch {
                            members: Vec::new(),
                        },
                    );
                    continue;
                }
                let client = tenant_client(shared, &mut tenants, hdr.tenant).clone();
                let acc = Arc::new(BatchAcc {
                    tenant: hdr.tenant,
                    corr: hdr.corr,
                    remaining: AtomicUsize::new(n),
                    members: Mutex::new(vec![None; n]),
                });
                let mut pend = conn.pending.lock().unwrap();
                for (index, chunk) in points.chunks(dim).enumerate() {
                    let ticket = client.submit_query(chunk, Some(received), Some(ntx.clone()), net);
                    pend.insert(
                        ticket.id(),
                        PendingOp::Member {
                            acc: Arc::clone(&acc),
                            index,
                            ticket,
                        },
                    );
                }
            }
            Request::Insert { point } => {
                if point.len() != dim {
                    shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    queue_error(conn, &ntx, hdr.tenant, hdr.corr, ErrorCode::BadFrame, 0.0);
                    continue;
                }
                let client = tenant_client(shared, &mut tenants, hdr.tenant).clone();
                let mut pend = conn.pending.lock().unwrap();
                let ticket = client.submit_write(
                    WriteOp::Insert(&point),
                    Some(received),
                    false,
                    Some(ntx.clone()),
                    net,
                );
                pend.insert(
                    ticket.id(),
                    PendingOp::Write {
                        tenant: hdr.tenant,
                        corr: hdr.corr,
                        ticket,
                    },
                );
            }
            Request::Delete { id } => {
                let client = tenant_client(shared, &mut tenants, hdr.tenant).clone();
                let mut pend = conn.pending.lock().unwrap();
                let ticket = client.submit_write(
                    WriteOp::Delete(id),
                    Some(received),
                    false,
                    Some(ntx.clone()),
                    net,
                );
                pend.insert(
                    ticket.id(),
                    PendingOp::Write {
                        tenant: hdr.tenant,
                        corr: hdr.corr,
                        ticket,
                    },
                );
            }
        }
    }
    // `ntx` drops here. The pump's channel disconnects only after every
    // outstanding ticket's notify clone fires too — i.e. after the last
    // in-flight op resolves — so the pump always drains, never leaks.
}

/// Map a resolved query to its wire response.
fn query_response(r: &QueryResult) -> Response {
    match r.status {
        OpStatus::Ok => Response::Neighbors {
            neighbors: r.neighbors.clone(),
        },
        OpStatus::Shed => shed_response(r.overload.as_ref().map_or(0.0, |o| o.retry_after)),
    }
}

/// Map a resolved write to its wire response.
fn write_response(r: &WriteResult) -> Response {
    match r.status {
        OpStatus::Ok => Response::Write {
            applied: r.applied,
            id: r.id,
        },
        OpStatus::Shed => shed_response(r.overload.as_ref().map_or(0.0, |o| o.retry_after)),
    }
}

fn shed_response(retry_after: f64) -> Response {
    Response::Error {
        // An infinite hint is the closed-session terminal rejection.
        code: if retry_after.is_infinite() {
            ErrorCode::Closed
        } else {
            ErrorCode::Overloaded
        },
        status: OpStatus::Shed,
        retry_after,
    }
}

fn run_pump(
    shared: &ServerShared,
    conn: &ConnShared,
    mut stream: TcpStream,
    nrx: Receiver<u64>,
    conn_id: u64,
) {
    // `recv` disconnects only once the reader is gone *and* every
    // outstanding ticket has resolved (each held a sender clone until
    // resolution) — the loop exit IS the drain guarantee.
    while let Ok(id) = nrx.recv() {
        if id == WAKE {
            flush_outbox(shared, conn, &mut stream);
            continue;
        }
        let Some(op) = conn.pending.lock().unwrap().remove(&id) else {
            continue;
        };
        match op {
            PendingOp::Query {
                tenant,
                corr,
                ticket,
            } => {
                let r = ticket.wait(); // resolved before the notify; returns immediately
                write_ticket_frame(shared, conn, &mut stream, tenant, corr, &query_response(&r));
            }
            PendingOp::Write {
                tenant,
                corr,
                ticket,
            } => {
                let r = ticket.wait();
                write_ticket_frame(shared, conn, &mut stream, tenant, corr, &write_response(&r));
            }
            PendingOp::Member { acc, index, ticket } => {
                let r = ticket.wait();
                let done = {
                    let mut m = acc.members.lock().unwrap();
                    m[index] = Some((r.status, r.neighbors));
                    acc.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                };
                if done {
                    let members = acc
                        .members
                        .lock()
                        .unwrap()
                        .iter_mut()
                        .map(|m| m.take().expect("every member recorded"))
                        .collect();
                    write_ticket_frame(
                        shared,
                        conn,
                        &mut stream,
                        acc.tenant,
                        acc.corr,
                        &Response::Batch { members },
                    );
                } else if conn.dead.load(Ordering::Acquire) {
                    // The batch frame will never be written; each
                    // member is its own orphaned ticket.
                    shared.stats.orphaned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    // Anything the reader queued in its final moments.
    flush_outbox(shared, conn, &mut stream);
    debug_assert!(
        conn.pending.lock().unwrap().is_empty(),
        "pump exited with pending ops"
    );
    let unclean = conn.dead.load(Ordering::Acquire);
    let _ = stream.shutdown(Shutdown::Both);
    shared.stats.conn_close(unclean);
    // Absent if `NetServer::close` already drained the map (it joins
    // this thread); dropping our own handles here just detaches them.
    shared.conns.lock().unwrap().remove(&conn_id);
}

/// Write one ticket-backed response, or count it orphaned if the peer
/// is unreachable.
fn write_ticket_frame(
    shared: &ServerShared,
    conn: &ConnShared,
    stream: &mut TcpStream,
    tenant: u16,
    corr: u64,
    rsp: &Response,
) {
    if conn.dead.load(Ordering::Acquire) {
        shared.stats.orphaned.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut buf = Vec::new();
    encode_response(tenant, corr, rsp, &mut buf);
    if stream.write_all(&buf).is_ok() {
        shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    } else {
        conn.dead.store(true, Ordering::Release);
        shared.stats.orphaned.fetch_add(1, Ordering::Relaxed);
    }
}

/// Flush reader-queued frames (pong/metrics/errors; never
/// ticket-backed, so failures mark the socket dead without counting
/// orphans).
fn flush_outbox(shared: &ServerShared, conn: &ConnShared, stream: &mut TcpStream) {
    let frames: Vec<Vec<u8>> = std::mem::take(&mut *conn.outbox.lock().unwrap());
    if conn.dead.load(Ordering::Acquire) {
        return;
    }
    for f in frames {
        if stream.write_all(&f).is_ok() {
            shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        } else {
            conn.dead.store(true, Ordering::Release);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_interval_slice() {
        let a = NetCounters {
            connections_accepted: 10,
            connections_dropped: 2,
            connections_peak: 7,
            frames_in: 100,
            frames_out: 90,
            frame_decode_errors: 3,
            tickets_orphaned: 5,
        };
        let b = NetCounters {
            connections_accepted: 4,
            connections_dropped: 1,
            connections_peak: 6,
            frames_in: 40,
            frames_out: 35,
            frame_decode_errors: 1,
            tickets_orphaned: 2,
        };
        let d = a.minus(&b);
        assert_eq!(d.connections_accepted, 6);
        assert_eq!(d.connections_dropped, 1);
        assert_eq!(d.connections_peak, 7); // cumulative, not subtracted
        assert_eq!(d.frames_in, 60);
        assert_eq!(d.frames_out, 55);
        assert_eq!(d.frame_decode_errors, 2);
        assert_eq!(d.tickets_orphaned, 3);
    }

    #[test]
    fn salvage_needs_a_full_header() {
        assert_eq!(salvage_ids(&[1, 2, 3]), (0, 0));
        let mut body = vec![1u8, 0x02];
        body.extend_from_slice(&7u16.to_le_bytes());
        body.extend_from_slice(&99u64.to_le_bytes());
        assert_eq!(salvage_ids(&body), (7, 99));
    }
}
