//! [`NetClient`]: the [`Client`](crate::session::Client) surface over
//! a socket.
//!
//! Synchronous but **pipelined**: `send_*` writes a frame and returns
//! its correlation id without reading anything; `wait_*` reads until
//! that id's response arrives, stashing any other responses that land
//! first (the server answers out of order as tickets resolve). The
//! combined helpers (`query`, `insert`, …) are the one-in-one-out
//! convenience layer on top.

use super::frame::{
    decode_response, encode_request, read_frame, BatchMember, ErrorCode, ReadFrame,
    ReadFrame::Body, Request, Response,
};
use crate::metrics::OpStatus;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Outcome of one query over the wire — the socket-side projection of
/// [`QueryResult`](crate::session::QueryResult).
#[derive(Clone, Debug)]
pub struct NetQueryReply {
    /// [`OpStatus::Ok`] for a served query, [`OpStatus::Shed`] for a
    /// typed rejection frame.
    pub status: OpStatus,
    /// Merged global top-k, distance ascending; empty when shed.
    pub neighbors: Vec<(u32, f32)>,
    /// The error frame's code when shed.
    pub error: Option<ErrorCode>,
    /// The error frame's backoff hint when shed (`f64::INFINITY` =
    /// terminal, e.g. the session behind the server is closed).
    pub retry_after: Option<f64>,
}

/// Outcome of one write over the wire — the socket-side projection of
/// [`WriteResult`](crate::session::WriteResult).
#[derive(Clone, Debug)]
pub struct NetWriteReply {
    /// [`OpStatus::Ok`] for a processed write (applied or not),
    /// [`OpStatus::Shed`] for a typed rejection frame.
    pub status: OpStatus,
    /// Whether the updater applied the op.
    pub applied: bool,
    /// Minted id (inserts) / target id (deletes), when known.
    pub id: Option<u32>,
    /// The error frame's code when shed.
    pub error: Option<ErrorCode>,
    /// The error frame's backoff hint when shed.
    pub retry_after: Option<f64>,
}

/// A synchronous, pipelining TCP client for [`NetServer`].
///
/// Not thread-safe by design (one socket, one correlation-id counter);
/// open one per thread — connections are what the server scales over.
///
/// [`NetServer`]: super::NetServer
pub struct NetClient {
    stream: TcpStream,
    tenant: u16,
    next_corr: u64,
    /// Responses read while waiting for a different correlation id.
    stash: HashMap<u64, Response>,
    /// Encode scratch, reused across sends.
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect to a [`NetServer`](super::NetServer), presenting
    /// `tenant` as the admission namespace on every frame.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: u16) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            tenant,
            next_corr: 0,
            stash: HashMap::new(),
            buf: Vec::new(),
        })
    }

    /// The tenant id stamped on this connection's frames.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    fn send(&mut self, req: &Request) -> io::Result<u64> {
        let corr = self.next_corr;
        self.next_corr += 1;
        self.buf.clear();
        encode_request(self.tenant, corr, req, &mut self.buf);
        self.stream.write_all(&self.buf)?;
        Ok(corr)
    }

    /// Read frames until `corr`'s response arrives, stashing others.
    fn recv_until(&mut self, corr: u64) -> io::Result<Response> {
        if let Some(rsp) = self.stash.remove(&corr) {
            return Ok(rsp);
        }
        loop {
            let body = match read_frame(&mut self.stream)? {
                Body(b) => b,
                ReadFrame::Closed => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ));
                }
                ReadFrame::Oversized(n) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oversized response frame ({n} bytes)"),
                    ));
                }
            };
            let (hdr, rsp) = decode_response(&body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if hdr.corr == corr {
                return Ok(rsp);
            }
            self.stash.insert(hdr.corr, rsp);
        }
    }

    /// Pipeline one query; returns its correlation id for
    /// [`Self::wait_query`].
    pub fn send_query(&mut self, point: &[f32]) -> io::Result<u64> {
        self.send(&Request::Query {
            point: point.to_vec(),
        })
    }

    /// Collect one pipelined query's reply.
    pub fn wait_query(&mut self, corr: u64) -> io::Result<NetQueryReply> {
        match self.recv_until(corr)? {
            Response::Neighbors { neighbors } => Ok(NetQueryReply {
                status: OpStatus::Ok,
                neighbors,
                error: None,
                retry_after: None,
            }),
            Response::Error {
                code,
                status,
                retry_after,
            } => Ok(NetQueryReply {
                status,
                neighbors: Vec::new(),
                error: Some(code),
                retry_after: Some(retry_after),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// One blocking query (send + wait).
    pub fn query(&mut self, point: &[f32]) -> io::Result<NetQueryReply> {
        let corr = self.send_query(point)?;
        self.wait_query(corr)
    }

    /// One blocking batch of same-dimension queries: `points` is
    /// `count × dim` coordinates, point-major; the reply has one
    /// `(status, top-k)` per point, in input order (members shed at
    /// admission are in-band, not error frames).
    pub fn query_batch(&mut self, dim: usize, points: &[f32]) -> io::Result<Vec<BatchMember>> {
        let corr = self.send(&Request::QueryBatch {
            dim: dim as u32,
            points: points.to_vec(),
        })?;
        match self.recv_until(corr)? {
            Response::Batch { members } => Ok(members),
            Response::Error { code, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("batch rejected: {code:?}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Pipeline one insert; returns its correlation id for
    /// [`Self::wait_write`].
    pub fn send_insert(&mut self, point: &[f32]) -> io::Result<u64> {
        self.send(&Request::Insert {
            point: point.to_vec(),
        })
    }

    /// Pipeline one delete; returns its correlation id for
    /// [`Self::wait_write`].
    pub fn send_delete(&mut self, id: u32) -> io::Result<u64> {
        self.send(&Request::Delete { id })
    }

    /// Collect one pipelined write's reply.
    pub fn wait_write(&mut self, corr: u64) -> io::Result<NetWriteReply> {
        match self.recv_until(corr)? {
            Response::Write { applied, id } => Ok(NetWriteReply {
                status: OpStatus::Ok,
                applied,
                id,
                error: None,
                retry_after: None,
            }),
            Response::Error {
                code,
                status,
                retry_after,
            } => Ok(NetWriteReply {
                status,
                applied: false,
                id: None,
                error: Some(code),
                retry_after: Some(retry_after),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// One blocking insert (send + wait).
    pub fn insert(&mut self, point: &[f32]) -> io::Result<NetWriteReply> {
        let corr = self.send_insert(point)?;
        self.wait_write(corr)
    }

    /// One blocking delete (send + wait).
    pub fn delete(&mut self, id: u32) -> io::Result<NetWriteReply> {
        let corr = self.send_delete(id)?;
        self.wait_write(corr)
    }

    /// Fetch the server's schema-v3 metrics JSON (a
    /// [`report_json`](crate::export::report_json) snapshot with the
    /// net counters filled in).
    pub fn metrics_json(&mut self) -> io::Result<String> {
        let corr = self.send(&Request::Metrics)?;
        match self.recv_until(corr)? {
            Response::Metrics { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        let corr = self.send(&Request::Ping)?;
        match self.recv_until(corr)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(rsp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("response kind does not match the request: {rsp:?}"),
    )
}
