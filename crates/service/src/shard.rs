//! Dataset sharding and per-shard index management.
//!
//! The serving layer splits the database into `N` contiguous partitions,
//! builds one E2LSHoS index per partition (each on its own device /
//! index file), and serves every query against all shards, merging the
//! per-shard top-k. Contiguous partitioning keeps the global→local id
//! mapping a single offset, so per-shard results translate with one add.
//!
//! ## Online growth
//!
//! Objects inserted after the build get the next global ids
//! (`n, n+1, …`) and are routed round-robin over the shards, so the
//! global↔local mapping for appended ids stays pure arithmetic — no
//! shared routing table, no lock on the hot result-mapping path (see
//! [`ShardPlan::shard_of_any`] / [`Shard::to_global`]). Each shard's
//! rows live behind an [`RwLock`] so the write path can append
//! coordinates while query reactors keep running.
//!
//! Each shard owns an optional [`BlockCache`] shared by every replica
//! driving that shard, so a bucket fetched by one replica is a DRAM hit
//! for all of them.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_storage::build::{build_index, BuildConfig};
use e2lsh_storage::device::cached::{BlockCache, CachePolicy};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::layout::BLOCK_SIZE;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// A contiguous partition of `0..n` into shards of near-equal size,
/// extended to ids `≥ n` (online inserts) by round-robin assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Split `n` objects into `num_shards` contiguous ranges whose sizes
    /// differ by at most one.
    pub fn contiguous(n: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1).min(n.max(1));
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut bounds = Vec::with_capacity(num_shards + 1);
        let mut at = 0;
        bounds.push(0);
        for s in 0..num_shards {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        debug_assert_eq!(*bounds.last().unwrap(), n);
        Self { bounds }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Objects covered at build time (appended ids start here).
    pub fn base_total(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// Build-time size of shard `s`.
    pub fn base_len(&self, s: usize) -> usize {
        self.bounds[s + 1] - self.bounds[s]
    }

    /// Global id range of shard `s` at build time.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Shard owning **build-time** global id `i < n`.
    pub fn shard_of(&self, i: usize) -> usize {
        match self.bounds.binary_search(&i) {
            Ok(s) => s.min(self.num_shards() - 1),
            Err(s) => s - 1,
        }
    }

    /// Shard owning any global id, including ids appended online:
    /// appended ids are dealt round-robin, so id `n + j` lives on shard
    /// `j mod N`.
    pub fn shard_of_any(&self, g: usize) -> usize {
        let n = self.base_total();
        if g < n {
            self.shard_of(g)
        } else {
            (g - n) % self.num_shards()
        }
    }

    /// Shard-local id of global id `g` (build-time or appended).
    pub fn local_of(&self, g: usize) -> usize {
        let n = self.base_total();
        if g < n {
            g - self.bounds[self.shard_of(g)]
        } else {
            self.base_len(self.shard_of_any(g)) + (g - n) / self.num_shards()
        }
    }

    /// Global id of shard `s`'s local id (inverse of
    /// [`ShardPlan::local_of`] within one shard).
    pub fn global_of(&self, s: usize, local: usize) -> usize {
        let base = self.base_len(s);
        if local < base {
            self.bounds[s] + local
        } else {
            self.base_total() + (local - base) * self.num_shards() + s
        }
    }
}

/// One partition: its rows, its opened on-storage index, and the shared
/// DRAM block cache its replicas use.
pub struct Shard {
    /// Shard index within the service.
    pub id: usize,
    /// Global id of local object 0.
    pub start: usize,
    /// The shard's rows (local ids `0..len`), behind a lock so the
    /// online write path can append coordinates while query reactors
    /// read them. Coordinates of deleted objects are kept (in-flight
    /// queries may still distance-check them; their index entries are
    /// gone, so they stop appearing in results).
    pub data: RwLock<Dataset>,
    /// The shard's opened E2LSHoS index (occupancy bitmaps are live:
    /// the write path publishes new filter bits into it).
    pub index: StorageIndex,
    /// The shard's index file.
    pub path: PathBuf,
    /// DRAM block cache shared by all replicas of this shard (None =
    /// uncached).
    pub cache: Option<Arc<BlockCache>>,
    /// Build-time rows of this shard (locals `>= base_len` were
    /// appended online).
    base_len: usize,
    /// Build-time total over all shards (appended global ids start
    /// here).
    base_total: usize,
    /// Shards in the service (round-robin modulus for appended ids).
    num_shards: usize,
}

impl Shard {
    /// Map a shard-local neighbor id to its global id. Pure arithmetic
    /// (contiguous base partition + round-robin appended ids), so the
    /// result-mapping hot path takes no lock.
    #[inline]
    pub fn to_global(&self, local: u32) -> u32 {
        if (local as usize) < self.base_len {
            local + self.start as u32
        } else {
            (self.base_total + (local as usize - self.base_len) * self.num_shards + self.id) as u32
        }
    }

    /// Shard-local id of a global id owned by this shard (inverse of
    /// [`Shard::to_global`]).
    #[inline]
    pub fn local_of(&self, global: u32) -> u32 {
        let g = global as usize;
        if g < self.base_total {
            debug_assert!(self.start <= g && g - self.start < self.base_len);
            (g - self.start) as u32
        } else {
            debug_assert_eq!((g - self.base_total) % self.num_shards, self.id);
            (self.base_len + (g - self.base_total) / self.num_shards) as u32
        }
    }

    /// Checked [`Shard::local_of`]: `Some(local)` when this shard owns
    /// `global` **and** the row exists (the id was assigned — inserted
    /// rows land in the dataset even when the index write failed).
    /// `None` for ids of other shards and ids never assigned — the
    /// writer's guard against deletes of unminted ids, which must fail
    /// cleanly instead of panicking.
    pub fn try_local_of(&self, global: u32) -> Option<u32> {
        let g = global as usize;
        let local = if g < self.base_total {
            if g < self.start || g - self.start >= self.base_len {
                return None;
            }
            (g - self.start) as u32
        } else {
            if (g - self.base_total) % self.num_shards != self.id {
                return None;
            }
            (self.base_len + (g - self.base_total) / self.num_shards) as u32
        };
        ((local as usize) < self.num_rows()).then_some(local)
    }

    /// Rows currently held (build-time + appended).
    pub fn num_rows(&self) -> usize {
        self.data.read().unwrap().len()
    }

    /// Build-time rows (before any online insert).
    pub fn base_len(&self) -> usize {
        self.base_len
    }
}

/// How shard indexes are built.
#[derive(Clone, Debug)]
pub struct ShardBuildConfig {
    /// Number of partitions.
    pub num_shards: usize,
    /// Hash-family seed (per-shard seed = `seed + shard id`, so shards
    /// use independent families; with one shard the index is identical to
    /// a plain `build_index` at this seed).
    pub seed: u64,
    /// Directory for the per-shard index files.
    pub dir: PathBuf,
    /// Per-shard DRAM cache capacity in 512-byte blocks (0 = uncached).
    pub cache_blocks: usize,
    /// Lock shards of the cache (power of contention reduction; clamped
    /// to `cache_blocks`).
    pub cache_lock_shards: usize,
    /// Per-shard object-ID capacity reserved for online inserts
    /// (`None` = the storage default, 2× the shard's build-time size).
    pub capacity: Option<usize>,
}

impl Default for ShardBuildConfig {
    fn default() -> Self {
        Self {
            num_shards: 1,
            seed: 42,
            dir: std::env::temp_dir().join("e2lsh-service"),
            cache_blocks: 0,
            cache_lock_shards: 8,
            capacity: None,
        }
    }
}

/// All shards of one dataset.
pub struct ShardSet {
    shards: Vec<Shard>,
    plan: ShardPlan,
    dim: usize,
    total: usize,
}

impl ShardSet {
    /// Partition `data` and build one index per shard.
    ///
    /// `params_for` derives the E2LSH parameters from each shard's local
    /// rows (parameters like `L = n^ρ` depend on the partition size, so
    /// they are per-shard).
    pub fn build(
        data: &Dataset,
        cfg: &ShardBuildConfig,
        params_for: impl Fn(&Dataset) -> E2lshParams,
    ) -> io::Result<Self> {
        assert!(!data.is_empty(), "cannot shard an empty dataset");
        std::fs::create_dir_all(&cfg.dir)?;
        let plan = ShardPlan::contiguous(data.len(), cfg.num_shards);
        let mut shards = Vec::with_capacity(plan.num_shards());
        for s in 0..plan.num_shards() {
            let range = plan.range(s);
            let mut local = Dataset::with_capacity(data.dim(), range.len());
            for i in range.clone() {
                local.push(data.point(i));
            }
            let params = params_for(&local);
            let path = cfg.dir.join(format!(
                "shard-{s}-of-{}-n{}-seed{}.idx",
                plan.num_shards(),
                local.len(),
                cfg.seed
            ));
            let build_cfg = BuildConfig {
                seed: cfg.seed + s as u64,
                capacity: cfg.capacity,
                ..Default::default()
            };
            build_index(&local, &params, &build_cfg, &path)?;
            let index = open_index(&path)?;
            let cache = (cfg.cache_blocks > 0)
                .then(|| Arc::new(BlockCache::new(cfg.cache_blocks, cfg.cache_lock_shards)));
            let base_len = local.len();
            shards.push(Shard {
                id: s,
                start: range.start,
                data: RwLock::new(local),
                index,
                path,
                cache,
                base_len,
                base_total: data.len(),
                num_shards: plan.num_shards(),
            });
        }
        Ok(Self {
            shards,
            plan,
            dim: data.dim(),
            total: data.len(),
        })
    }

    /// The shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Replace every shard's block cache with an empty one of the same
    /// capacity under `policy`. A
    /// [`TinyLfu`](CachePolicy::TinyLfu) `region_boundary` of 0 is
    /// resolved per shard from its index geometry
    /// (`heap_base / BLOCK_SIZE`): keys below the boundary are
    /// table-region blocks (hash-table slots and filters), keys at or
    /// above it are bucket-chain blocks. Call before replicas clone
    /// their caches (the service does this at construction); uncached
    /// shards are untouched.
    pub fn set_cache_policy(&mut self, policy: CachePolicy) {
        for shard in &mut self.shards {
            let Some(cache) = &shard.cache else { continue };
            let mut policy = policy;
            if let CachePolicy::TinyLfu(cfg) = &mut policy {
                if cfg.region_boundary == 0 {
                    cfg.region_boundary = shard.index.geometry().heap_base() / BLOCK_SIZE as u64;
                }
            }
            shard.cache = Some(Arc::new(BlockCache::with_policy(
                cache.capacity(),
                cache.lock_shards(),
                policy,
            )));
        }
    }

    /// The partition plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total objects across shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the set holds no objects.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Remove the shard index files (call when the service is done).
    pub fn cleanup(&self) {
        for s in &self.shards {
            std::fs::remove_file(&s.path).ok();
            // Drop the directory too once the last shard file is gone
            // (fails harmlessly while non-empty or shared).
            if let Some(dir) = s.path.parent() {
                std::fs::remove_dir(dir).ok();
            }
        }
    }
}

/// Open an index file without standing up a real device (metadata reads
/// only).
fn open_index(path: &Path) -> io::Result<StorageIndex> {
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(path)?);
    StorageIndex::open(&mut dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_plan_covers_everything() {
        let plan = ShardPlan::contiguous(10, 3);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..7);
        assert_eq!(plan.range(2), 7..10);
        for i in 0..10 {
            let s = plan.shard_of(i);
            assert!(plan.range(s).contains(&i), "id {i} in shard {s}");
        }
    }

    #[test]
    fn plan_clamps_shard_count() {
        let plan = ShardPlan::contiguous(2, 8);
        assert_eq!(plan.num_shards(), 2);
        let plan = ShardPlan::contiguous(5, 1);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.range(0), 0..5);
    }

    #[test]
    fn appended_ids_route_round_robin_and_roundtrip() {
        let plan = ShardPlan::contiguous(10, 3);
        // Base ids roundtrip through the contiguous mapping.
        for g in 0..10 {
            let s = plan.shard_of_any(g);
            assert_eq!(s, plan.shard_of(g));
            assert_eq!(plan.global_of(s, plan.local_of(g)), g);
        }
        // Appended ids (10, 11, …) are dealt round-robin and locals are
        // dense continuations of each shard's base range.
        for j in 0..12 {
            let g = 10 + j;
            let s = plan.shard_of_any(g);
            assert_eq!(s, j % 3);
            let local = plan.local_of(g);
            assert_eq!(local, plan.base_len(s) + j / 3);
            assert_eq!(plan.global_of(s, local), g);
        }
    }
}
