//! The per-replica **reactor**: one completion-driven event loop per
//! replica, replacing the old one-blocked-thread-per-worker serve loop.
//!
//! The paper's central result (§6.5) is that asynchronous I/O with deep
//! queue depth beats synchronous querying by ~20× — QD=1 cannot hide
//! storage latency. The old `worker` module already used the storage
//! crate's completion-shaped [`QueryDriver`] state machine, but capped
//! service-level concurrency at `workers_per_replica ×
//! contexts_per_worker` *threads-worth* of slots, each worker blocking
//! on its own device handle. The reactor finishes the job:
//!
//! * **One event loop per replica** ([`run_replica`]) owns the
//!   replica's device handle and its admission queue, and multiplexes
//!   up to [`ServiceConfig::inflight_per_replica`] interleaved
//!   [`QueryState`] slots over the device's native queue depth — the
//!   in-flight query count is no longer tied to a thread count.
//! * **CPU work is offloaded** (hashing at admission and on radius
//!   escalation, bucket scans and distance evaluation on completion) to
//!   a small compute pool of `workers_per_replica` threads, so the
//!   completion loop never stalls behind a hash or a scan. Compute
//!   tasks run the driver against a submit-only buffer device; the
//!   reactor replays the buffered I/O onto the real device when the
//!   task returns, keeping the device handle single-owner.
//! * **Slot lifecycle**: free → admitted (checked out to an `Admit`
//!   task) → in flight (home, I/O outstanding) → checked out to a
//!   `Complete` task → … → finished (harvested, partial emitted, slot
//!   freed). Completions that arrive while a slot is checked out are
//!   parked in a per-slot pending list and re-dispatched the moment the
//!   slot returns, so one slow hash never blocks the poll loop.
//! * **Idle discipline**: every no-progress iteration blocks on the
//!   event source that can actually wake it — the compute-result
//!   channel, the modeled next-completion time (wall-driven sim), the
//!   device's own wait (wall-clock devices), or the job queue — with a
//!   debug assertion that active slots always imply outstanding I/O or
//!   an outstanding compute task. (The old loop could fall through to a
//!   100%-CPU spin when a device reported no completions and zero
//!   in-flight I/Os with a slot still active.)
//!
//! Statistics are published *live* into a per-replica
//! [`ReplicaStatsCell`] — once per harvest batch, not once per
//! completion, so the hot completion path no longer serializes on the
//! metrics mutex — and ticket ids are kept in a reactor-side table
//! instead of being round-tripped through the engine's `usize` query
//! id, so a `u64` ticket id survives losslessly on any target.
//!
//! The reactor is also the replica's **fencing agent**
//! ([`crate::router`]): it checks the replica's down flag every
//! iteration, abandons queued and in-flight work once fenced, and — as
//! the lane's only queue receiver — performs the last-exiter handshake
//! itself: wait for in-progress sends to quiesce, then emit exactly one
//! [`ReactorMsg::ReplicaDown`], the collector's cue to re-dispatch the
//! replica's outstanding queries. A panic anywhere in the loop (or in a
//! compute task, which reports back and re-panics the reactor) fences
//! the replica first, so a crash degrades into the same failover path
//! instead of stranding tickets.
//!
//! [`ServiceConfig::inflight_per_replica`]: crate::service::ServiceConfig::inflight_per_replica

use crate::admission::GatedReceiver;
use crate::router::LaneState;
use crate::shard::Shard;
use crate::topology::Replica;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use e2lsh_storage::device::{Device, DeviceStats, IoCompletion, IoRequest};
use e2lsh_storage::query::{completion_ctx, EngineClock, EngineConfig, QueryDriver, QueryState};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A query admitted to the service. Jobs are self-contained: the
/// session's clients submit arbitrary points at any time, so each job
/// carries its own coordinates instead of indexing a pre-known set.
#[derive(Clone, Debug)]
pub struct Job {
    /// The ticket id of the query this job serves (session-unique).
    pub qid: u64,
    /// The query coordinates (shared across the per-shard fan-out).
    pub point: Arc<[f32]>,
}

/// Reactor → collector messages.
pub enum ReactorMsg {
    /// One shard finished one query.
    Partial {
        /// Ticket id of the query.
        qid: u64,
        /// Shard that produced this partial result.
        shard: usize,
        /// Replica (within the shard) that served it — trace spans
        /// record which lane did the work.
        replica: usize,
        /// Top-k within the shard, **global** ids, distance ascending.
        neighbors: Vec<(u32, f32)>,
        /// I/Os this shard issued for the query.
        n_io: u32,
        /// Seconds since the session epoch when this shard *started*
        /// serving the query (dispatched into a reactor slot). The
        /// collector keeps the minimum over shards: latency from there
        /// is pure service time, latency from the ticket's submission
        /// reference additionally counts enqueue wait.
        start: f64,
        /// Seconds since the session epoch when the shard finished.
        finish: f64,
    },
    /// A fenced (or panicked) replica finished dying for this session:
    /// its reactor has stopped, in-progress sends have quiesced, and no
    /// further partial of its queued or in-flight jobs will arrive
    /// (ones already emitted may still race in — the collector's
    /// received markers drop duplicates). Sent exactly once per fenced
    /// replica per session, by the reactor on its way out. The
    /// collector answers with the failover scan ([`crate::router`]).
    ReplicaDown {
        /// Shard of the dead replica.
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
    },
}

/// Live statistics one replica's reactor publishes for
/// `Session::metrics`: refreshed once per harvest batch and at exit, so
/// snapshots taken mid-session see every completed query's device work
/// without the completion path taking the mutex per completion.
#[derive(Debug, Default)]
pub struct ReplicaStatsCell {
    /// The replica's device statistics (whole-array totals for shared
    /// sim arrays — the aggregator de-duplicates per shard).
    pub device: Mutex<DeviceStats>,
    /// Queries this replica completed.
    pub served: AtomicU64,
}

/// How long a reactor with free slots will block on other event sources
/// before re-checking the job queue for admittable work.
const ADMIT_CHECK_S: f64 = 500e-6;

/// The longest any idle block lasts, so a late fence or disconnect is
/// noticed promptly.
const IDLE_BLOCK: Duration = Duration::from_millis(2);

/// Sleep (coarsely, then yielding) until `epoch + t`. The final window
/// yields the core each pass instead of pure spinning: on an
/// oversubscribed machine a spin here can starve the very thread whose
/// progress it is waiting on.
pub(crate) fn sleep_until(epoch: Instant, t: f64) {
    loop {
        let now = epoch.elapsed().as_secs_f64();
        let rem = t - now;
        if rem <= 0.0 {
            return;
        }
        if rem > 300e-6 {
            std::thread::sleep(Duration::from_secs_f64(rem - 200e-6));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Everything a replica's reactor borrows from the session for its
/// lifetime.
pub struct ReactorCtx<'a> {
    /// The shard this replica serves.
    pub shard: &'a Shard,
    /// The replica index within the shard.
    pub replica: usize,
    /// The replica's health handle ([`crate::topology`]): its down flag
    /// is checked every loop iteration, and [`run_replica`] fences it
    /// when the loop (or a compute task) panics.
    pub replica_state: &'a Replica,
    /// The replica's per-session handshake state ([`crate::router`]).
    pub lane: &'a LaneState,
    /// The replica's live statistics cell.
    pub stats: &'a ReplicaStatsCell,
    /// Engine configuration; `contexts` is the reactor's slot count
    /// (the resolved [`ServiceConfig::inflight_per_replica`]).
    ///
    /// [`ServiceConfig::inflight_per_replica`]: crate::service::ServiceConfig::inflight_per_replica
    pub engine: &'a EngineConfig,
    /// CPU threads in the replica's compute pool
    /// ([`ServiceConfig::workers_per_replica`]).
    ///
    /// [`ServiceConfig::workers_per_replica`]: crate::service::ServiceConfig::workers_per_replica
    pub compute_threads: usize,
    /// True when the device models time (wall-driven simulation): poll
    /// with the epoch-relative clock and sleep to modeled completion
    /// times instead of blocking in the device.
    pub sim_time: bool,
    /// The session start instant all timestamps are relative to.
    pub epoch: Instant,
}

/// Run one replica's reactor until the job channel disconnects and all
/// admitted queries finish — or the replica is fenced, in which case
/// the reactor abandons its work and performs the exit handshake. A
/// panic inside the loop (or inside a compute task) fences the replica
/// and exits through the same handshake instead of poisoning the
/// session.
pub fn run_replica(
    ctx: ReactorCtx<'_>,
    device: Box<dyn Device>,
    jobs: GatedReceiver<Job>,
    out: Sender<ReactorMsg>,
) {
    let panicked = catch_unwind(AssertUnwindSafe(|| serve(&ctx, device, &jobs, &out))).is_err();
    if panicked {
        // Crash containment: fence the whole replica — through
        // Topology's own fence path, so the diagnostics counter records
        // the crash. Statistics published before the panic stand; the
        // failover scan re-serves whatever this replica was holding.
        ctx.replica_state.fence();
        ctx.lane.fenced.store(true, Ordering::SeqCst);
    }
    // Exit handshake. Only meaningful when the lane died fenced — the
    // *latched* per-session flag, not the live `is_down()`: an unfence
    // racing this handshake must not suppress the ReplicaDown (the
    // collector's only cue to rescue the abandoned jobs; a suppressed
    // emission would strand their tickets forever). The reactor is the
    // lane's only queue receiver, so it is always the "last exiter":
    // the counter still feeds the router's dead-lane check.
    ctx.lane.exited.fetch_add(1, Ordering::SeqCst);
    if ctx.lane.fenced.load(Ordering::SeqCst) {
        // Quiesce: a dispatcher that saw the flag up never sends; one
        // that raced it holds `routes` until its send lands. After this
        // wait every live ticket's dispatch masks are complete and the
        // dead queue is frozen — safe to tell the collector to scan.
        // (The receiver `jobs` is still alive here, so those racing
        // sends never hit a disconnected channel.) Yield, don't spin:
        // the dispatcher we are waiting on may need this core.
        while ctx.lane.routes.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        let _ = out.send(ReactorMsg::ReplicaDown {
            shard: ctx.shard.id,
            replica: ctx.replica,
        });
    }
}

/// A unit of CPU work shipped to the compute pool. The slot travels
/// with the task (checked out of the reactor's table), so exactly one
/// thread touches a query's state at a time.
enum Task {
    /// Hash the point, plan the probes and buffer the first I/O wave.
    Admit {
        slot: Box<QueryState>,
        ci: usize,
        point: Arc<[f32]>,
        now: f64,
    },
    /// Scan the completed blocks, evaluate distances, buffer follow-up
    /// I/O (and re-hash on radius escalation).
    Complete {
        slot: Box<QueryState>,
        ci: usize,
        comps: Vec<IoCompletion>,
        now: f64,
    },
}

/// A compute task's result. `slot: None` means the task panicked — the
/// reactor re-panics, which fences the replica through
/// [`run_replica`]'s catch.
struct Done {
    ci: usize,
    slot: Option<Box<QueryState>>,
    /// I/Os the driver issued during the task, to be replayed onto the
    /// real device by the reactor.
    subs: Vec<IoRequest>,
}

/// The submit-only device the compute pool drives the [`QueryDriver`]
/// against: it records the driver's submissions for the reactor to
/// replay, so the real device handle stays owned by one thread. The
/// driver never polls or waits inside `admit`/`handle_completion` —
/// only the executor loop does — so the other methods are inert.
#[derive(Default)]
struct SubmitBuffer {
    subs: Vec<IoRequest>,
}

impl Device for SubmitBuffer {
    fn submit(&mut self, req: IoRequest, _now: f64) {
        self.subs.push(req);
    }
    fn poll(&mut self, _now: f64, _out: &mut Vec<IoCompletion>) {}
    fn next_completion_time(&self) -> Option<f64> {
        None
    }
    fn wait(&mut self) {}
    fn inflight(&self) -> usize {
        0
    }
    fn read_sync(&mut self, _addr: u64, _len: u32) -> Vec<u8> {
        unreachable!("the reactor's compute buffer is submit-only")
    }
    fn stats(&self) -> DeviceStats {
        DeviceStats::default()
    }
}

/// One compute-pool thread: runs its own [`QueryDriver`] (scratch is
/// per-thread; per-query state arrives with the task) over whatever
/// slots the reactor checks out to it. A panic inside a task is caught
/// and reported as `slot: None` so the reactor can fence the replica
/// instead of hanging on a result that will never come.
fn run_compute(shard: &Shard, engine: &EngineConfig, tasks: Receiver<Task>, done: Sender<Done>) {
    let mut driver = QueryDriver::new(&shard.index, engine);
    let mut clock = EngineClock::default();
    while let Ok(task) = tasks.recv() {
        let ci = match &task {
            Task::Admit { ci, .. } | Task::Complete { ci, .. } => *ci,
        };
        let mut buf = SubmitBuffer::default();
        let slot = catch_unwind(AssertUnwindSafe(|| match task {
            Task::Admit {
                mut slot,
                ci,
                point,
                now,
            } => {
                clock.observe(now);
                // The engine-level query id is the slot index; the
                // reactor keeps the real u64 ticket id in its own
                // table, so it never narrows through a usize.
                driver.admit(&mut slot, ci, &point, &mut clock, &mut buf);
                slot
            }
            Task::Complete {
                mut slot,
                comps,
                now,
                ..
            } => {
                // One read guard over the shard rows for the whole
                // batch; the write path only appends (and appends
                // coordinates before index entries reference them), so
                // anything decoded from these completions is covered.
                let data = shard.data.read().unwrap();
                for comp in comps {
                    clock.observe(comp.time);
                    clock.observe(now);
                    driver.handle_completion(&mut slot, &comp, &data, &mut clock, &mut buf);
                }
                slot
            }
        }))
        .ok();
        // The reactor outlives the pool, so the send only fails during
        // its unwind — when the result is moot anyway.
        let _ = done.send(Done {
            ci,
            slot,
            subs: buf.subs,
        });
    }
}

/// Bring up the compute pool and run the reactor loop. The pool is
/// scoped: `task_tx` drops when the loop exits (or unwinds), the pool
/// drains and joins, and only then does `serve` return.
fn serve(
    ctx: &ReactorCtx<'_>,
    device: Box<dyn Device>,
    jobs: &GatedReceiver<Job>,
    out: &Sender<ReactorMsg>,
) {
    let (done_tx, done_rx) = unbounded::<Done>();
    std::thread::scope(|s| {
        let (task_tx, task_rx) = unbounded::<Task>();
        for _ in 0..ctx.compute_threads.max(1) {
            let trx = task_rx.clone();
            let dtx = done_tx.clone();
            s.spawn(move || run_compute(ctx.shard, ctx.engine, trx, dtx));
        }
        drop(task_rx);
        reactor_loop(ctx, device, jobs, out, &task_tx, &done_rx);
    });
}

/// The reactor loop proper (see [`run_replica`] for the exit paths).
fn reactor_loop(
    ctx: &ReactorCtx<'_>,
    mut device: Box<dyn Device>,
    jobs: &GatedReceiver<Job>,
    out: &Sender<ReactorMsg>,
    tasks: &Sender<Task>,
    done: &Receiver<Done>,
) {
    let nslots = ctx.engine.contexts.max(1);
    // Slot table: `None` = checked out to a compute task.
    let mut slots: Vec<Option<Box<QueryState>>> = (0..nslots)
        .map(|ci| Some(Box::new(QueryState::new(ci))))
        .collect();
    // Ticket ids live here, never inside the engine: lossless on any
    // target, no u64→usize round trip.
    let mut qids = vec![0u64; nslots];
    let mut starts = vec![0.0f64; nslots];
    // Completions that arrived while their slot was checked out.
    let mut pending: Vec<Vec<IoCompletion>> = (0..nslots).map(|_| Vec::new()).collect();
    let mut free: Vec<usize> = (0..nslots).rev().collect();
    let mut at_compute = 0usize;
    let mut served = 0u64;
    let mut disconnected = false;
    let mut completions: Vec<IoCompletion> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut finished: Vec<usize> = Vec::new();

    macro_rules! wall_now {
        () => {
            ctx.epoch.elapsed().as_secs_f64()
        };
    }

    // Check a free slot out to the compute pool with a job.
    macro_rules! dispatch_admit {
        ($job:expr) => {{
            let job: Job = $job;
            let ci = free.pop().expect("a slot is free");
            let slot = slots[ci].take().expect("free slot is home");
            qids[ci] = job.qid;
            let t = wall_now!();
            starts[ci] = t;
            at_compute += 1;
            tasks
                .send(Task::Admit {
                    slot,
                    ci,
                    point: job.point,
                    now: t,
                })
                .expect("compute pool outlives the reactor");
        }};
    }

    // Absorb one compute result: replay its buffered I/O onto the real
    // device, re-dispatch any completions that queued up meanwhile, and
    // stage finished queries for harvest.
    macro_rules! handle_done {
        ($d:expr) => {{
            let d: Done = $d;
            at_compute -= 1;
            let slot = match d.slot {
                Some(s) => s,
                // Propagate the compute panic: run_replica's catch
                // fences the replica and runs the failover handshake.
                None => panic!("compute task panicked"),
            };
            let ci = d.ci;
            let t = wall_now!();
            for req in d.subs {
                device.submit(req, t);
            }
            if slot.is_active() && !pending[ci].is_empty() {
                let comps = std::mem::take(&mut pending[ci]);
                at_compute += 1;
                tasks
                    .send(Task::Complete {
                        slot,
                        ci,
                        comps,
                        now: t,
                    })
                    .expect("compute pool outlives the reactor");
            } else {
                debug_assert!(
                    pending[ci].is_empty(),
                    "completions pending for an inactive slot"
                );
                let active = slot.is_active();
                slots[ci] = Some(slot);
                if !active {
                    finished.push(ci);
                }
            }
        }};
    }

    // Emit the partial results of this round's finished slots. Device
    // statistics are published once per batch — not once per completion
    // — and *before* the sends: the collector may resolve a ticket the
    // moment its last partial lands, and a snapshot taken right then
    // must already see this batch's device work.
    macro_rules! flush_finished {
        () => {{
            if !finished.is_empty() {
                *ctx.stats.device.lock().unwrap() = device.stats();
                served += finished.len() as u64;
                ctx.stats.served.store(served, Ordering::Release);
                for ci in finished.drain(..) {
                    let slot = slots[ci].as_mut().expect("finished slot is home");
                    let outcome = slot.take_outcome();
                    let neighbors = outcome
                        .neighbors
                        .iter()
                        .map(|&(id, d)| (ctx.shard.to_global(id), d))
                        .collect();
                    free.push(ci);
                    // The collector may already have everything it
                    // needs and be gone; that is not a reactor error.
                    let _ = out.send(ReactorMsg::Partial {
                        qid: qids[ci],
                        shard: ctx.shard.id,
                        replica: ctx.replica,
                        neighbors,
                        n_io: outcome.n_io(),
                        start: starts[ci],
                        finish: wall_now!(),
                    });
                }
            }
        }};
    }

    loop {
        // Fenced: abandon queued and in-flight work immediately — the
        // replica is "dead" and the failover scan re-serves its
        // queries. The flag is latched into the lane first, so the
        // fence is sticky for this session. (Break, not return: the
        // final stats publication below still carries the work done
        // before the fence.)
        if ctx.replica_state.is_down() || ctx.lane.fenced.load(Ordering::SeqCst) {
            ctx.lane.fenced.store(true, Ordering::SeqCst);
            break;
        }

        let mut progress = false;

        // Reap compute results.
        while let Ok(d) = done.try_recv() {
            handle_done!(d);
            progress = true;
        }
        flush_finished!();

        // Admit as many queued jobs as there are free slots.
        while !free.is_empty() && !disconnected {
            match jobs.try_recv() {
                Ok(job) => {
                    dispatch_admit!(job);
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }

        let active = nslots - free.len();
        if active == 0 {
            if disconnected {
                break;
            }
            // Idle: block briefly for work (timeout so a late
            // disconnect — or a fence — is noticed).
            match jobs.recv_timeout(IDLE_BLOCK) {
                Ok(job) => dispatch_admit!(job),
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
                Err(RecvTimeoutError::Timeout) => {}
            }
            continue;
        }

        // Drive the device: batch this poll's completions per slot and
        // check each touched slot out to the compute pool.
        completions.clear();
        let poll_now = if ctx.sim_time { wall_now!() } else { f64::MAX };
        device.poll(poll_now, &mut completions);
        if !completions.is_empty() {
            progress = true;
            touched.clear();
            for comp in completions.drain(..) {
                let ci = completion_ctx(&comp);
                if pending[ci].is_empty() {
                    touched.push(ci);
                }
                pending[ci].push(comp);
            }
            let t = wall_now!();
            for &ci in &touched {
                // A checked-out slot keeps its completions parked in
                // `pending`; they are re-dispatched from handle_done
                // when its current task returns.
                if let Some(slot) = slots[ci].take() {
                    debug_assert!(slot.is_active(), "completion for an idle slot");
                    let comps = std::mem::take(&mut pending[ci]);
                    at_compute += 1;
                    tasks
                        .send(Task::Complete {
                            slot,
                            ci,
                            comps,
                            now: t,
                        })
                        .expect("compute pool outlives the reactor");
                }
            }
        }
        if progress {
            continue;
        }

        // Nothing moved: block on whichever event source can wake us.
        // Every state has one — that is the contract the old serve loop
        // broke (it could fall through to a busy spin when a device
        // reported no completions and no in-flight I/O with a slot
        // still active).
        let inflight = device.inflight();
        debug_assert!(
            at_compute > 0 || inflight > 0,
            "active slots with no outstanding I/O and no compute in flight"
        );
        if at_compute > 0 {
            // Compute results are the next wake source; cap the block
            // so device completions (wall-driven sim) and queued jobs
            // stay timely.
            let mut timeout = IDLE_BLOCK.as_secs_f64();
            if !free.is_empty() && !disconnected {
                timeout = timeout.min(ADMIT_CHECK_S);
            }
            if ctx.sim_time && inflight > 0 {
                if let Some(t) = device.next_completion_time() {
                    timeout = timeout.min((t - wall_now!()).max(0.0));
                }
            }
            match done.recv_timeout(Duration::from_secs_f64(timeout)) {
                Ok(d) => {
                    handle_done!(d);
                    flush_finished!();
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
            }
        } else if inflight > 0 {
            if ctx.sim_time {
                if let Some(t) = device.next_completion_time() {
                    // With free slots, cap the sleep so queued jobs are
                    // admitted promptly instead of waiting out a whole
                    // device service time.
                    let t = if free.is_empty() || disconnected {
                        t
                    } else {
                        t.min(wall_now!() + ADMIT_CHECK_S)
                    };
                    sleep_until(ctx.epoch, t);
                }
            } else if free.is_empty() || disconnected {
                device.wait();
            } else {
                // Free slots: wait for either new work or an I/O
                // completion, whichever comes first.
                match jobs.recv_timeout(Duration::from_secs_f64(ADMIT_CHECK_S)) {
                    Ok(job) => dispatch_admit!(job),
                    Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        } else {
            // Unreachable per the driver's invariant (asserted above):
            // an active slot always has I/O or compute outstanding.
            // Sleep, don't spin, if a device ever violates it.
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    // Final publication: covers trailing device work (e.g. I/Os of
    // abandoned in-flight queries) that no harvest reported.
    *ctx.stats.device.lock().unwrap() = device.stats();
    ctx.stats.served.store(served, Ordering::Release);
}
