//! A simulated device array shared by a shard's replica reactors.
//!
//! The paper's Figure 16 observation — thread throughput scales with CPU
//! until the storage array's total IOPS caps it — only reproduces when
//! the replicas contend for *one* device array. [`SharedSimArray`] wraps a
//! [`SimStorage`] in a mutex and hands each replica's reactor a
//! [`SharedSimHandle`] implementing [`Device`]; the array routes each
//! completion back to the handle that submitted it (tags are only unique
//! per handle, so the wrapper re-tags in-flight I/Os with a global
//! sequence number).
//!
//! Timing: the underlying model runs in virtual seconds, but the service
//! drives it with wall-clock `now` values (seconds since the service
//! epoch), so modeled service times play out in real time — queries
//! block until the modeled completion timestamp passes on the wall
//! clock.

use e2lsh_storage::device::sim::SimStorage;
use e2lsh_storage::device::{Device, DeviceStats, IoCompletion, IoRequest};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

struct Routed {
    /// wrapper sequence tag → (owner handle, original tag)
    owners: HashMap<u64, (usize, u64)>,
    /// Completions drained from the sim, waiting for their owner's poll.
    ready: Vec<Vec<IoCompletion>>,
    inflight: Vec<usize>,
    seq: u64,
    sim: SimStorage,
}

impl Routed {
    /// Pull everything the sim has finished by `now` into the per-owner
    /// queues.
    fn drain(&mut self, now: f64, scratch: &mut Vec<IoCompletion>) {
        scratch.clear();
        self.sim.poll(now, scratch);
        for mut comp in scratch.drain(..) {
            let (owner, tag) = self
                .owners
                .remove(&comp.tag)
                .expect("completion for unknown tag");
            comp.tag = tag;
            self.inflight[owner] -= 1;
            self.ready[owner].push(comp);
        }
    }
}

/// A shared simulated device array; create once per shard, then
/// [`SharedSimArray::handle`] per replica reactor.
pub struct SharedSimArray {
    inner: Arc<Mutex<Routed>>,
    num_handles: usize,
}

impl SharedSimArray {
    /// Share `sim` between `num_handles` replica reactors.
    pub fn new(sim: SimStorage, num_handles: usize) -> Self {
        assert!(num_handles >= 1);
        Self {
            inner: Arc::new(Mutex::new(Routed {
                owners: HashMap::new(),
                ready: (0..num_handles).map(|_| Vec::new()).collect(),
                inflight: vec![0; num_handles],
                seq: 0,
                sim,
            })),
            num_handles,
        }
    }

    /// The device handle for handle `id` (`0..num_handles`).
    pub fn handle(&self, id: usize) -> SharedSimHandle {
        assert!(id < self.num_handles);
        SharedSimHandle {
            inner: Arc::clone(&self.inner),
            id,
            scratch: Vec::new(),
        }
    }
}

/// One reactor's view of a [`SharedSimArray`].
pub struct SharedSimHandle {
    inner: Arc<Mutex<Routed>>,
    id: usize,
    scratch: Vec<IoCompletion>,
}

impl Device for SharedSimHandle {
    fn submit(&mut self, req: IoRequest, now: f64) {
        let mut g = self.inner.lock().unwrap();
        g.seq += 1;
        let wrapped = g.seq;
        g.owners.insert(wrapped, (self.id, req.tag));
        g.inflight[self.id] += 1;
        g.sim.submit(
            IoRequest {
                addr: req.addr,
                len: req.len,
                tag: wrapped,
            },
            now,
        );
    }

    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>) {
        let mut g = self.inner.lock().unwrap();
        let mut scratch = std::mem::take(&mut self.scratch);
        g.drain(now, &mut scratch);
        self.scratch = scratch;
        out.append(&mut g.ready[self.id]);
    }

    fn next_completion_time(&self) -> Option<f64> {
        let g = self.inner.lock().unwrap();
        // Earliest of: completions already routed to this handle, or the
        // sim's next completion (which may belong to another handle —
        // conservative, the caller just polls again).
        let routed = g.ready[self.id]
            .iter()
            .map(|c| c.time)
            .fold(f64::INFINITY, f64::min);
        let next = g.sim.next_completion_time().unwrap_or(f64::INFINITY);
        let t = routed.min(next);
        (t != f64::INFINITY).then_some(t)
    }

    fn wait(&mut self) {}

    fn inflight(&self) -> usize {
        let g = self.inner.lock().unwrap();
        g.inflight[self.id] + g.ready[self.id].len()
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        self.inner.lock().unwrap().sim.read_sync(addr, len)
    }

    fn stats(&self) -> DeviceStats {
        // Whole-array statistics; the service de-duplicates by reading
        // them from one handle per array.
        self.inner.lock().unwrap().sim.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2lsh_storage::device::sim::{Backing, DeviceProfile};

    #[test]
    fn completions_route_to_their_submitter() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(vec![7u8; 1 << 16]));
        let arr = SharedSimArray::new(sim, 2);
        let mut a = arr.handle(0);
        let mut b = arr.handle(1);
        // Both handles use the same (handle-local) tag.
        a.submit(
            IoRequest {
                addr: 0,
                len: 512,
                tag: 9,
            },
            0.0,
        );
        b.submit(
            IoRequest {
                addr: 512,
                len: 512,
                tag: 9,
            },
            0.0,
        );
        assert_eq!(a.inflight(), 1);
        assert_eq!(b.inflight(), 1);
        let t = a.next_completion_time().unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.poll(t.max(1.0), &mut out_a);
        b.poll(t.max(1.0), &mut out_b);
        assert_eq!(out_a.len(), 1, "a gets exactly its own completion");
        assert_eq!(out_b.len(), 1);
        assert_eq!(out_a[0].tag, 9);
        assert_eq!(out_b[0].tag, 9);
        assert_eq!(a.inflight(), 0);
        assert_eq!(b.inflight(), 0);
    }

    #[test]
    fn foreign_completions_survive_another_handles_poll() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(vec![0u8; 1 << 16]));
        let arr = SharedSimArray::new(sim, 2);
        let mut a = arr.handle(0);
        let mut b = arr.handle(1);
        b.submit(
            IoRequest {
                addr: 0,
                len: 512,
                tag: 1,
            },
            0.0,
        );
        // Worker a polls past the completion time: b's completion must
        // stay queued for b.
        let mut out = Vec::new();
        a.poll(10.0, &mut out);
        assert!(out.is_empty());
        assert_eq!(b.inflight(), 1, "still owed to b");
        b.poll(10.0, &mut out);
        assert_eq!(out.len(), 1);
    }
}
