//! Latency and throughput accounting for the serving layer.
//!
//! With bounded admission (see [`crate::admission`]) not every op
//! completes: shed ops carry [`OpStatus::Shed`] and must be excluded
//! from latency percentiles — a rejected request has no service time,
//! and averaging zeros in would *flatter* the tail exactly when the
//! system is saturated. [`LatencySummary::of_accepted`] is the
//! rejected-aware entry point; shed counts are reported separately
//! (shed rate, goodput) so saturation sweeps show both sides.
//!
//! Long-lived sessions book latencies into [`LatencyHistogram`] — a
//! fixed-memory, log-bucketed (HDR-style) histogram that is mergeable
//! and *subtractable*, so [`crate::service::ServiceReport::interval_since`]
//! slices an interval exactly by subtracting two monotonic snapshots,
//! and `Session::metrics` stays O(1) in completed ops.

/// Terminal status of one op under bounded admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpStatus {
    /// Completed normally; its latency samples are valid.
    #[default]
    Ok,
    /// Rejected at admission with [`crate::admission::Overload`]: no
    /// results, no latency sample.
    Shed,
}

/// Load imbalance of a replica group: max over mean (1.0 = perfectly
/// balanced, R = everything on one of R replicas). 0 for an empty or
/// all-zero sample — an idle group is not "imbalanced".
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

/// Percentile of an **unsorted** latency sample (nearest-rank method).
/// `p` is in `[0, 100]`. Returns 0 for an empty sample. Uses quickselect
/// on one working copy — O(n), no full sort. Callers taking several
/// percentiles of the same sample should sort once and use
/// [`percentile_sorted`], or better, book into a [`LatencyHistogram`].
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let rank = nearest_rank(p, samples.len());
    let mut work = samples.to_vec();
    let (_, val, _) = work.select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
    *val
}

/// 1-based nearest rank of percentile `p` in a sample of `len`.
fn nearest_rank(p: f64, len: usize) -> usize {
    let p = p.clamp(0.0, 100.0);
    (((p / 100.0) * len as f64).ceil() as usize).max(1)
}

/// Percentile of an already ascending-sorted sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[nearest_rank(p, sorted.len()) - 1]
}

/// Summary statistics of a latency sample (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize the samples of **accepted** ops only: `samples[i]` is
    /// kept iff `statuses[i]` is [`OpStatus::Ok`]. The two slices are
    /// parallel (per-op, in op order).
    pub fn of_accepted(samples: &[f64], statuses: &[OpStatus]) -> Self {
        debug_assert_eq!(samples.len(), statuses.len());
        let accepted: Vec<f64> = samples
            .iter()
            .zip(statuses)
            .filter(|&(_, s)| *s == OpStatus::Ok)
            .map(|(&l, _)| l)
            .collect();
        Self::of_owned(accepted)
    }

    /// Summarize a sample. Copies and sorts the sample **once** for all
    /// five statistics (never per percentile).
    pub fn of(samples: &[f64]) -> Self {
        Self::of_owned(samples.to_vec())
    }

    fn of_owned(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Self {
            count: samples.len(),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: percentile_sorted(&samples, 50.0),
            p95: percentile_sorted(&samples, 95.0),
            p99: percentile_sorted(&samples, 99.0),
            max: *samples.last().unwrap(),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded log-bucketed histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile
/// error at `2^-SUB_BITS` (3.125%).
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest tracked value: 2^-30 s ≈ 0.93 ns. Below lands in the
/// underflow bucket.
const MIN_EXP: i64 = -30;
/// Largest tracked octave: values in [2^9, 2^10) s. At or above 2^10 s
/// (~17 min) lands in the overflow bucket.
const MAX_EXP: i64 = 9;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Underflow + regular buckets + overflow.
const NUM_BUCKETS: usize = 1 + OCTAVES * SUBS + 1;
const MIN_TRACKED: f64 = 1.0 / ((1u64 << (-MIN_EXP)) as f64);
const MAX_TRACKED: f64 = (1u64 << (MAX_EXP + 1)) as f64;

/// Fixed-memory log-bucketed latency histogram (seconds).
///
/// HDR-style bucketing straight off the f64 bit pattern: the exponent
/// selects the octave, the top `SUB_BITS = 5` mantissa bits the linear
/// sub-bucket, so recording is branch-light and allocation-free.
/// Quantiles report the **upper bound** of the selected bucket, hence
/// for any percentile `p`: `exact ≤ histogram ≤ exact × (1 + 2^-5)`
/// (nearest-rank exact value; see the property tests).
///
/// State is pure integers (bucket counts plus a nanosecond total), so
/// merging and subtracting are exact and order-independent:
/// `b.minus(&a)` of two monotonic snapshots is **bit-identical** to a
/// histogram that recorded only the in-between ops. Memory is a flat
/// ~10 KiB regardless of how many ops were recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    count: u64,
    sum_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum_nanos: 0,
        }
    }

    fn bucket_index(x: f64) -> usize {
        if x.is_nan() || x < MIN_TRACKED {
            // Zero, negatives, subnormal-small, NaN.
            return 0;
        }
        if x >= MAX_TRACKED {
            // Includes +inf.
            return NUM_BUCKETS - 1;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as i64;
        (1 + (exp - MIN_EXP) * SUBS as i64 + sub) as usize
    }

    /// Upper bound of bucket `idx` — the value quantiles report.
    fn bucket_upper(idx: usize) -> f64 {
        if idx == 0 {
            return MIN_TRACKED;
        }
        if idx >= NUM_BUCKETS - 1 {
            return MAX_TRACKED;
        }
        let i = idx - 1;
        let exp = MIN_EXP + (i / SUBS) as i64;
        let sub = (i % SUBS) as f64;
        2f64.powi(exp as i32) * (1.0 + (sub + 1.0) / SUBS as f64)
    }

    /// Record one sample (seconds).
    pub fn record(&mut self, seconds: f64) {
        self.counts[Self::bucket_index(seconds)] += 1;
        self.count += 1;
        let nanos = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9).round() as u64
        } else {
            0
        };
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
    }

    /// `self − prev` for two monotonic snapshots (`prev` taken earlier
    /// from the same stream). Panics if `prev` is not a prefix — every
    /// bucket of `prev` must be ≤ the corresponding bucket of `self`.
    pub fn minus(&self, prev: &Self) -> Self {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(prev.counts.iter())
            .map(|(&a, &b)| {
                a.checked_sub(b)
                    .expect("histogram snapshots out of order: prev is not a prefix of self")
            })
            .collect();
        Self {
            counts: counts.into_boxed_slice(),
            count: self
                .count
                .checked_sub(prev.count)
                .expect("histogram snapshots out of order"),
            sum_nanos: self
                .sum_nanos
                .checked_sub(prev.sum_nanos)
                .expect("histogram snapshots out of order"),
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (exact to nanosecond rounding).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 * 1e-9 / self.count as f64
        }
    }

    /// Upper bound of the highest occupied bucket (0 if empty).
    pub fn max(&self) -> f64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            Some(idx) => Self::bucket_upper(idx),
            None => 0.0,
        }
    }

    /// Nearest-rank quantile, `p` in `[0, 100]`; reports the selected
    /// bucket's upper bound. 0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = nearest_rank(p, self.count as usize) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx);
            }
        }
        Self::bucket_upper(NUM_BUCKETS - 1)
    }

    /// Five-number summary from the buckets — O(buckets), no sorting.
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.count as usize,
            mean: self.mean(),
            p50: self.quantile(50.0),
            p95: self.quantile(95.0),
            p99: self.quantile(99.0),
            max: self.max(),
        }
    }

    /// Occupied buckets as `(upper_bound_seconds, count)` pairs, for
    /// export. Sparse: empty buckets are skipped.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
            .collect()
    }

    /// Maximum relative error of [`Self::quantile`] vs the exact
    /// nearest-rank percentile: one sub-bucket width.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn accepted_summary_skips_shed_ops() {
        let lat = [1.0, 0.0, 3.0, 0.0];
        let st = [OpStatus::Ok, OpStatus::Shed, OpStatus::Ok, OpStatus::Shed];
        let s = LatencySummary::of_accepted(&lat, &st);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        // All shed: empty summary, not zeros averaged in.
        let none = LatencySummary::of_accepted(&lat, &[OpStatus::Shed; 4]);
        assert_eq!(none.count, 0);
    }

    #[test]
    fn imbalance_ratio() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0, 0]), 0.0);
        assert_eq!(imbalance(&[5, 5, 5]), 1.0);
        assert_eq!(imbalance(&[9, 0, 0]), 3.0);
        assert!(imbalance(&[4, 2]) > 1.0 && imbalance(&[4, 2]) < 2.0);
    }

    #[test]
    fn summary_is_order_free() {
        let a = LatencySummary::of(&[3.0, 1.0, 2.0]);
        let b = LatencySummary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn histogram_quantile_brackets_exact() {
        let mut h = LatencyHistogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-4).collect();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), 1000);
        for p in [0.0, 10.0, 50.0, 95.0, 99.0, 100.0] {
            let exact = percentile(&samples, p);
            let approx = h.quantile(p);
            assert!(
                approx >= exact && approx <= exact * (1.0 + LatencyHistogram::RELATIVE_ERROR),
                "p{p}: exact {exact} approx {approx}"
            );
        }
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-9);
        assert!(h.max() >= 0.1 && h.max() <= 0.1 * (1.0 + LatencyHistogram::RELATIVE_ERROR));
    }

    #[test]
    fn histogram_edge_values() {
        let mut h = LatencyHistogram::new();
        for v in [0.0, -1.0, f64::NAN, 1e-12, f64::INFINITY, 1e6, 5e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Underflow bucket caught the tiny/invalid ones; overflow the huge.
        assert_eq!(h.counts[0], 4);
        assert_eq!(h.counts[NUM_BUCKETS - 1], 2);
        // Quantiles stay finite and ordered.
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(100.0) >= h.quantile(50.0));
    }

    #[test]
    fn histogram_subtraction_is_bit_exact() {
        let mut first = LatencyHistogram::new();
        for i in 0..100 {
            first.record((i as f64 + 1.0) * 3.7e-4);
        }
        let snapshot = first.clone();
        let mut interval_only = LatencyHistogram::new();
        for i in 0..57 {
            let v = (i as f64 * 13.0 + 5.0) * 1.1e-3;
            first.record(v);
            interval_only.record(v);
        }
        let diff = first.minus(&snapshot);
        assert_eq!(diff, interval_only);
        assert_eq!(diff.count(), 57);
        // Merging the snapshot back reproduces the full histogram.
        let mut rebuilt = interval_only.clone();
        rebuilt.merge(&snapshot);
        assert_eq!(rebuilt, first);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn histogram_subtraction_rejects_reordered_snapshots() {
        let mut a = LatencyHistogram::new();
        a.record(1e-3);
        let b = LatencyHistogram::new();
        let _ = b.minus(&a);
    }

    #[test]
    fn histogram_summary_matches_quantiles() {
        let mut h = LatencyHistogram::new();
        for i in 0..500 {
            h.record(1e-5 * (1.13f64).powi(i % 40));
        }
        let s = h.summary();
        assert_eq!(s.count, 500);
        assert_eq!(s.p50, h.quantile(50.0));
        assert_eq!(s.p99, h.quantile(99.0));
        assert_eq!(s.max, h.max());
        assert!(!h.nonzero_buckets().is_empty());
        let total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 500);
    }
}
