//! Latency and throughput accounting for the serving layer.
//!
//! With bounded admission (see [`crate::admission`]) not every op
//! completes: shed ops carry [`OpStatus::Shed`] and must be excluded
//! from latency percentiles — a rejected request has no service time,
//! and averaging zeros in would *flatter* the tail exactly when the
//! system is saturated. [`LatencySummary::of_accepted`] is the
//! rejected-aware entry point; shed counts are reported separately
//! (shed rate, goodput) so saturation sweeps show both sides.

/// Terminal status of one op under bounded admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpStatus {
    /// Completed normally; its latency samples are valid.
    #[default]
    Ok,
    /// Rejected at admission with [`crate::admission::Overload`]: no
    /// results, no latency sample.
    Shed,
}

/// Load imbalance of a replica group: max over mean (1.0 = perfectly
/// balanced, R = everything on one of R replicas). 0 for an empty or
/// all-zero sample — an idle group is not "imbalanced".
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

/// Percentile of an **unsorted** latency sample (nearest-rank method).
/// `p` is in `[0, 100]`. Returns 0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already ascending-sorted sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Summary statistics of a latency sample (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize the samples of **accepted** ops only: `samples[i]` is
    /// kept iff `statuses[i]` is [`OpStatus::Ok`]. The two slices are
    /// parallel (per-op, in op order).
    pub fn of_accepted(samples: &[f64], statuses: &[OpStatus]) -> Self {
        debug_assert_eq!(samples.len(), statuses.len());
        let accepted: Vec<f64> = samples
            .iter()
            .zip(statuses)
            .filter(|&(_, s)| *s == OpStatus::Ok)
            .map(|(&l, _)| l)
            .collect();
        Self::of(&accepted)
    }

    /// Summarize a sample.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn accepted_summary_skips_shed_ops() {
        let lat = [1.0, 0.0, 3.0, 0.0];
        let st = [OpStatus::Ok, OpStatus::Shed, OpStatus::Ok, OpStatus::Shed];
        let s = LatencySummary::of_accepted(&lat, &st);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        // All shed: empty summary, not zeros averaged in.
        let none = LatencySummary::of_accepted(&lat, &[OpStatus::Shed; 4]);
        assert_eq!(none.count, 0);
    }

    #[test]
    fn imbalance_ratio() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0, 0]), 0.0);
        assert_eq!(imbalance(&[5, 5, 5]), 1.0);
        assert_eq!(imbalance(&[9, 0, 0]), 3.0);
        assert!(imbalance(&[4, 2]) > 1.0 && imbalance(&[4, 2]) < 2.0);
    }

    #[test]
    fn summary_is_order_free() {
        let a = LatencySummary::of(&[3.0, 1.0, 2.0]);
        let b = LatencySummary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.count, 3);
    }
}
