//! The per-thread serving loop.
//!
//! Each worker belongs to one **replica** of one shard
//! ([`crate::topology`]): it owns one device handle onto the shard's
//! index (wrapped in the replica's private block cache) and drives the
//! storage crate's [`QueryDriver`] over `contexts` interleaved
//! [`QueryState`] slots — the same asynchronous state machine
//! `run_queries` uses, but fed from the replica's admission queue and
//! emitting per-shard partial results as queries finish.
//!
//! Workers also participate in the **fencing protocol**
//! ([`crate::router`]): every loop iteration checks the replica's down
//! flag; once fenced, the worker abandons its queued and in-flight
//! work, and the last worker out of the replica waits for in-progress
//! sends to quiesce before emitting one [`WorkerMsg::ReplicaDown`] —
//! the collector's signal to re-dispatch the replica's outstanding
//! queries. A worker that **panics** fences its own replica first, so
//! a crash degrades into the same failover path instead of a hung
//! collector.

use crate::admission::GatedReceiver;
use crate::router::LaneState;
use crate::shard::Shard;
use crate::topology::Replica;
use crossbeam::channel::{RecvTimeoutError, Sender, TryRecvError};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::query::{completion_ctx, EngineClock, EngineConfig, QueryDriver, QueryState};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A query admitted to the service; workers look the point up in the
/// shared query set.
#[derive(Clone, Copy, Debug)]
pub struct Job {
    /// Index into the service's query set.
    pub qid: usize,
}

/// Worker/writer → collector messages.
pub enum WorkerMsg {
    /// One shard finished one query.
    Partial {
        /// Query id.
        qid: usize,
        /// Shard that produced this partial result.
        shard: usize,
        /// Top-k within the shard, **global** ids, distance ascending.
        neighbors: Vec<(u32, f32)>,
        /// I/Os this shard issued for the query.
        n_io: u32,
        /// Seconds since the service epoch when this shard *started*
        /// serving the query (admitted into a worker slot). The
        /// collector keeps the minimum over shards: latency from there
        /// is pure service time, latency from the op's queue-entry
        /// reference additionally counts enqueue wait.
        start: f64,
        /// Seconds since the service epoch when the shard finished.
        finish: f64,
    },
    /// A shard writer finished one insert/delete.
    WriteDone {
        /// Index of the op in the service's op stream.
        op_idx: usize,
        /// False when the updater returned an error (the shard stays
        /// queryable; the rewritten blocks were still invalidated).
        ok: bool,
        /// Seconds since the service epoch when the writer dequeued the
        /// job (service start; `finish - start` excludes queue wait).
        start: f64,
        /// Seconds since the service epoch when the write finished.
        finish: f64,
    },
    /// The dispatcher shed one op at admission ([`crate::admission`]):
    /// no worker will report it. Emitted by the open-loop arrival
    /// thread so the collector still sees exactly one terminal message
    /// per op (the closed loop books sheds inline).
    Shed {
        /// Index of the op in the service's op stream.
        op_idx: usize,
        /// `Some(qid)` for queries, `None` for writes.
        qid: Option<usize>,
    },
    /// A fenced (or panicked) replica finished dying for this run: its
    /// workers have stopped, in-progress sends have quiesced, and no
    /// further partial of its queued or in-flight jobs will arrive
    /// (ones already emitted may still race in — the collector's
    /// received markers drop duplicates). Sent exactly once per fenced
    /// replica per run, by the last worker out. The collector answers
    /// with the failover scan ([`crate::router`]).
    ReplicaDown {
        /// Shard of the dead replica.
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
    },
    /// A worker drained its queue and exited.
    Done {
        /// Shard the worker served.
        shard: usize,
        /// Replica the worker belonged to.
        replica: usize,
        /// Worker index within the replica.
        worker_in_replica: usize,
        /// Final device statistics (for shared devices this is the whole
        /// array — the collector de-duplicates).
        device: DeviceStats,
        /// Queries this worker completed.
        served: usize,
    },
}

/// How long a worker with free slots will block on its device before
/// re-checking the job queue for admittable work.
const ADMIT_CHECK_S: f64 = 500e-6;

/// Sleep (coarsely, then spinning) until `epoch + t`.
pub(crate) fn sleep_until(epoch: Instant, t: f64) {
    loop {
        let now = epoch.elapsed().as_secs_f64();
        let rem = t - now;
        if rem <= 0.0 {
            return;
        }
        if rem > 300e-6 {
            std::thread::sleep(Duration::from_secs_f64(rem - 200e-6));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Everything a worker borrows from the service for its lifetime.
pub struct WorkerCtx<'a> {
    /// The shard this worker serves.
    pub shard: &'a Shard,
    /// The replica of the shard this worker belongs to.
    pub replica: usize,
    /// Worker index within the replica.
    pub worker_in_replica: usize,
    /// Workers in this replica this run (for the last-exiter duty).
    pub workers_in_replica: usize,
    /// The replica's health handle ([`crate::topology`]): its down flag
    /// is checked every loop iteration, and [`run_worker`] fences it
    /// when the serving loop panics.
    pub replica_state: &'a Replica,
    /// The replica's per-run handshake state ([`crate::router`]).
    pub lane: &'a LaneState,
    /// The service-wide query set jobs index into.
    pub queries: &'a Dataset,
    /// Engine configuration (wall-clock; `contexts` slots).
    pub engine: &'a EngineConfig,
    /// True when the device models time (wall-driven simulation): poll
    /// with the epoch-relative clock and sleep to modeled completion
    /// times instead of blocking in the device.
    pub sim_time: bool,
    /// The service start instant all timestamps are relative to.
    pub epoch: Instant,
}

/// Run the serving loop until the job channel disconnects and all
/// admitted queries finish — or the replica is fenced, in which case
/// the worker abandons its work and performs the exit handshake. A
/// panic inside the serving loop fences the replica and exits through
/// the same handshake instead of poisoning the run.
pub fn run_worker(
    ctx: WorkerCtx<'_>,
    device: Box<dyn Device>,
    jobs: GatedReceiver<Job>,
    out: Sender<WorkerMsg>,
) {
    let panicked =
        catch_unwind(AssertUnwindSafe(|| serve_loop(&ctx, device, &jobs, &out))).is_err();
    if panicked {
        // Crash containment: fence the whole replica (siblings abandon
        // too — through Topology's own fence path, so the diagnostics
        // counter records the crash) and report zeroed stats; the
        // failover scan re-serves whatever this replica was holding.
        ctx.replica_state.fence();
        let _ = out.send(WorkerMsg::Done {
            shard: ctx.shard.id,
            replica: ctx.replica,
            worker_in_replica: ctx.worker_in_replica,
            device: DeviceStats::default(),
            served: 0,
        });
    }
    // Exit handshake. Only meaningful when the replica is down — but
    // the counter is bumped on every path so "last worker out" is well
    // defined no matter how the exits interleave with a late fence.
    let exited = ctx.lane.exited.fetch_add(1, Ordering::SeqCst) + 1;
    if ctx.replica_state.is_down() && exited == ctx.workers_in_replica {
        // Quiesce: a dispatcher that saw the flag up never sends; one
        // that raced it holds `routes` until its send lands. After this
        // wait the routing table is complete and the dead queue is
        // frozen — safe to tell the collector to scan. (The receiver
        // `jobs` is still alive here, so those racing sends never hit a
        // disconnected channel.)
        while ctx.lane.routes.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let _ = out.send(WorkerMsg::ReplicaDown {
            shard: ctx.shard.id,
            replica: ctx.replica,
        });
    }
}

/// The serving loop proper (see [`run_worker`] for the exit paths).
fn serve_loop(
    ctx: &WorkerCtx<'_>,
    mut device: Box<dyn Device>,
    jobs: &GatedReceiver<Job>,
    out: &Sender<WorkerMsg>,
) {
    let mut driver = QueryDriver::new(&ctx.shard.index, ctx.engine);
    let nslots = ctx.engine.contexts.max(1);
    let mut slots: Vec<QueryState> = (0..nslots).map(QueryState::new).collect();
    let mut slot_start = vec![0.0f64; nslots];
    let mut free: Vec<usize> = (0..nslots).rev().collect();
    let mut clock = EngineClock::default();
    let mut completions = Vec::new();
    let mut disconnected = false;
    let mut served = 0usize;

    // Emit the partial result of a finished slot.
    macro_rules! harvest {
        ($ci:expr) => {{
            let ci = $ci;
            let qid = slots[ci].query_id();
            let outcome = slots[ci].take_outcome();
            let neighbors = outcome
                .neighbors
                .iter()
                .map(|&(id, d)| (ctx.shard.to_global(id), d))
                .collect();
            served += 1;
            free.push(ci);
            // The collector may already have everything it needs and be
            // gone; that is not a worker error.
            let _ = out.send(WorkerMsg::Partial {
                qid,
                shard: ctx.shard.id,
                neighbors,
                n_io: outcome.n_io(),
                start: slot_start[ci],
                finish: ctx.epoch.elapsed().as_secs_f64(),
            });
        }};
    }

    // Admit one job into a free slot (there must be one).
    macro_rules! admit {
        ($job:expr) => {{
            let job: Job = $job;
            let ci = free.pop().expect("a slot is free");
            slot_start[ci] = ctx.epoch.elapsed().as_secs_f64();
            clock.observe(slot_start[ci]);
            driver.admit(
                &mut slots[ci],
                job.qid,
                ctx.queries.point(job.qid),
                &mut clock,
                &mut *device,
            );
            if !slots[ci].is_active() {
                harvest!(ci);
            }
        }};
    }

    loop {
        // Fenced: abandon queued and in-flight work immediately — the
        // replica is "dead", the failover scan re-serves its queries.
        // (Break, not return: the exit report below still carries the
        // stats of the work done before the fence.)
        if ctx.replica_state.is_down() {
            break;
        }

        // Admit as many queued jobs as there are free slots.
        while !free.is_empty() && !disconnected {
            match jobs.try_recv() {
                Ok(job) => admit!(job),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }

        let active = nslots - free.len();
        if active == 0 {
            if disconnected {
                break;
            }
            // Idle: block briefly for work (timeout so a late disconnect
            // — or a fence — is noticed).
            match jobs.recv_timeout(Duration::from_millis(2)) {
                Ok(job) => admit!(job),
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
                Err(RecvTimeoutError::Timeout) => {}
            }
            continue;
        }

        // Drive the device.
        completions.clear();
        let poll_now = if ctx.sim_time {
            ctx.epoch.elapsed().as_secs_f64()
        } else {
            f64::MAX
        };
        device.poll(poll_now, &mut completions);
        if completions.is_empty() {
            if device.inflight() > 0 {
                if ctx.sim_time {
                    if let Some(t) = device.next_completion_time() {
                        // With free slots, cap the sleep so queued jobs
                        // are admitted promptly instead of waiting out a
                        // whole device service time.
                        let t = if free.is_empty() {
                            t
                        } else {
                            t.min(ctx.epoch.elapsed().as_secs_f64() + ADMIT_CHECK_S)
                        };
                        sleep_until(ctx.epoch, t);
                    }
                } else if free.is_empty() {
                    device.wait();
                } else {
                    // Free slots: wait for either new work or an I/O
                    // completion, whichever comes first.
                    match jobs.recv_timeout(Duration::from_secs_f64(ADMIT_CHECK_S)) {
                        Ok(job) => admit!(job),
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
            }
            continue;
        }
        // One read guard over the shard rows for the whole completion
        // batch; the write path only appends (and appends coordinates
        // before index entries reference them), so anything decoded
        // from these completions is covered by this view.
        let data = ctx.shard.data.read().unwrap();
        for comp in completions.drain(..) {
            clock.observe(comp.time);
            clock.observe(ctx.epoch.elapsed().as_secs_f64());
            let ci = completion_ctx(&comp);
            driver.handle_completion(&mut slots[ci], &comp, &data, &mut clock, &mut *device);
            if !slots[ci].is_active() {
                harvest!(ci);
            }
        }
        drop(data);
    }

    let _ = out.send(WorkerMsg::Done {
        shard: ctx.shard.id,
        replica: ctx.replica,
        worker_in_replica: ctx.worker_in_replica,
        device: device.stats(),
        served,
    });
}
