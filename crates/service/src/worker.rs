//! The per-thread serving loop.
//!
//! Each worker belongs to one **replica** of one shard
//! ([`crate::topology`]): it owns one device handle onto the shard's
//! index (wrapped in the replica's private block cache) and drives the
//! storage crate's [`QueryDriver`] over `contexts` interleaved
//! [`QueryState`] slots — the same asynchronous state machine
//! `run_queries` uses, but fed from the replica's admission queue and
//! emitting per-shard partial results as queries finish.
//!
//! Since the session redesign ([`crate::session`]) workers are
//! **session-lived**: they are spawned once by `Session::start`, serve
//! jobs submitted by any number of concurrent clients (each [`Job`]
//! carries its own query point — there is no shared pre-known query
//! set), and exit when the session shuts down and their queue
//! disconnects. Statistics are published *live* into a per-worker
//! [`WorkerStatsCell`] (on every query completion and at exit), so
//! `Session::metrics` can report device and load counters mid-run
//! without waiting for worker exit.
//!
//! Workers also participate in the **fencing protocol**
//! ([`crate::router`]): every loop iteration checks the replica's down
//! flag; once fenced, the worker abandons its queued and in-flight
//! work, and the last worker out of the replica waits for in-progress
//! sends to quiesce before emitting one [`WorkerMsg::ReplicaDown`] —
//! the collector's signal to re-dispatch the replica's outstanding
//! queries. A worker that **panics** fences its own replica first, so
//! a crash degrades into the same failover path instead of stranding
//! the replica's tickets.

use crate::admission::GatedReceiver;
use crate::router::LaneState;
use crate::shard::Shard;
use crate::topology::Replica;
use crossbeam::channel::{RecvTimeoutError, Sender, TryRecvError};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::query::{completion_ctx, EngineClock, EngineConfig, QueryDriver, QueryState};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A query admitted to the service. Jobs are self-contained: the
/// session's clients submit arbitrary points at any time, so each job
/// carries its own coordinates instead of indexing a pre-known set.
#[derive(Clone, Debug)]
pub struct Job {
    /// The ticket id of the query this job serves (session-unique).
    pub qid: u64,
    /// The query coordinates (shared across the per-shard fan-out).
    pub point: std::sync::Arc<[f32]>,
}

/// Worker → collector messages.
pub enum WorkerMsg {
    /// One shard finished one query.
    Partial {
        /// Ticket id of the query.
        qid: u64,
        /// Shard that produced this partial result.
        shard: usize,
        /// Replica (within the shard) that served it — trace spans
        /// record which lane did the work.
        replica: usize,
        /// Top-k within the shard, **global** ids, distance ascending.
        neighbors: Vec<(u32, f32)>,
        /// I/Os this shard issued for the query.
        n_io: u32,
        /// Seconds since the session epoch when this shard *started*
        /// serving the query (admitted into a worker slot). The
        /// collector keeps the minimum over shards: latency from there
        /// is pure service time, latency from the ticket's submission
        /// reference additionally counts enqueue wait.
        start: f64,
        /// Seconds since the session epoch when the shard finished.
        finish: f64,
    },
    /// A fenced (or panicked) replica finished dying for this session:
    /// its workers have stopped, in-progress sends have quiesced, and
    /// no further partial of its queued or in-flight jobs will arrive
    /// (ones already emitted may still race in — the collector's
    /// received markers drop duplicates). Sent exactly once per fenced
    /// replica per session, by the last worker out. The collector
    /// answers with the failover scan ([`crate::router`]).
    ReplicaDown {
        /// Shard of the dead replica.
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
    },
}

/// Live statistics one worker publishes for `Session::metrics`:
/// updated on every query completion and at worker exit, so snapshots
/// taken mid-session see every completed query's device work.
#[derive(Debug, Default)]
pub struct WorkerStatsCell {
    /// The worker's device statistics (whole-array totals for shared
    /// sim arrays — the aggregator de-duplicates per shard).
    pub device: Mutex<DeviceStats>,
    /// Queries this worker completed.
    pub served: AtomicU64,
}

/// How long a worker with free slots will block on its device before
/// re-checking the job queue for admittable work.
const ADMIT_CHECK_S: f64 = 500e-6;

/// Sleep (coarsely, then spinning) until `epoch + t`.
pub(crate) fn sleep_until(epoch: Instant, t: f64) {
    loop {
        let now = epoch.elapsed().as_secs_f64();
        let rem = t - now;
        if rem <= 0.0 {
            return;
        }
        if rem > 300e-6 {
            std::thread::sleep(Duration::from_secs_f64(rem - 200e-6));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Everything a worker borrows from the session for its lifetime.
pub struct WorkerCtx<'a> {
    /// The shard this worker serves.
    pub shard: &'a Shard,
    /// The replica of the shard this worker belongs to.
    pub replica: usize,
    /// Worker index within the replica.
    pub worker_in_replica: usize,
    /// Workers in this replica this session (for the last-exiter duty).
    pub workers_in_replica: usize,
    /// The replica's health handle ([`crate::topology`]): its down flag
    /// is checked every loop iteration, and [`run_worker`] fences it
    /// when the serving loop panics.
    pub replica_state: &'a Replica,
    /// The replica's per-session handshake state ([`crate::router`]).
    pub lane: &'a LaneState,
    /// The worker's live statistics cell.
    pub stats: &'a WorkerStatsCell,
    /// Engine configuration (wall-clock; `contexts` slots).
    pub engine: &'a EngineConfig,
    /// True when the device models time (wall-driven simulation): poll
    /// with the epoch-relative clock and sleep to modeled completion
    /// times instead of blocking in the device.
    pub sim_time: bool,
    /// The session start instant all timestamps are relative to.
    pub epoch: Instant,
}

/// Run the serving loop until the job channel disconnects and all
/// admitted queries finish — or the replica is fenced, in which case
/// the worker abandons its work and performs the exit handshake. A
/// panic inside the serving loop fences the replica and exits through
/// the same handshake instead of poisoning the session.
pub fn run_worker(
    ctx: WorkerCtx<'_>,
    device: Box<dyn Device>,
    jobs: GatedReceiver<Job>,
    out: Sender<WorkerMsg>,
) {
    let panicked =
        catch_unwind(AssertUnwindSafe(|| serve_loop(&ctx, device, &jobs, &out))).is_err();
    if panicked {
        // Crash containment: fence the whole replica (siblings abandon
        // too — through Topology's own fence path, so the diagnostics
        // counter records the crash). Statistics published before the
        // panic stand; the failover scan re-serves whatever this
        // replica was holding.
        ctx.replica_state.fence();
        ctx.lane.fenced.store(true, Ordering::SeqCst);
    }
    // Exit handshake. Only meaningful when the lane died fenced — the
    // *latched* per-session flag, not the live `is_down()`: an unfence
    // racing this handshake must not suppress the ReplicaDown (the
    // collector's only cue to rescue the abandoned jobs; a suppressed
    // emission would strand their tickets forever). The counter is
    // bumped on every path so "last worker out" is well defined no
    // matter how the exits interleave with a late fence.
    let exited = ctx.lane.exited.fetch_add(1, Ordering::SeqCst) + 1;
    if ctx.lane.fenced.load(Ordering::SeqCst) && exited == ctx.workers_in_replica {
        // Quiesce: a dispatcher that saw the flag up never sends; one
        // that raced it holds `routes` until its send lands. After this
        // wait every live ticket's dispatch masks are complete and the
        // dead queue is frozen — safe to tell the collector to scan.
        // (The receiver `jobs` is still alive here, so those racing
        // sends never hit a disconnected channel.)
        while ctx.lane.routes.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let _ = out.send(WorkerMsg::ReplicaDown {
            shard: ctx.shard.id,
            replica: ctx.replica,
        });
    }
}

/// The serving loop proper (see [`run_worker`] for the exit paths).
fn serve_loop(
    ctx: &WorkerCtx<'_>,
    mut device: Box<dyn Device>,
    jobs: &GatedReceiver<Job>,
    out: &Sender<WorkerMsg>,
) {
    let mut driver = QueryDriver::new(&ctx.shard.index, ctx.engine);
    let nslots = ctx.engine.contexts.max(1);
    let mut slots: Vec<QueryState> = (0..nslots).map(QueryState::new).collect();
    let mut slot_start = vec![0.0f64; nslots];
    let mut free: Vec<usize> = (0..nslots).rev().collect();
    let mut clock = EngineClock::default();
    let mut completions = Vec::new();
    let mut disconnected = false;
    let mut served = 0u64;

    // Emit the partial result of a finished slot and publish live
    // statistics (the collector may resolve the ticket the moment the
    // partial lands, so stats must be current *before* the send).
    macro_rules! harvest {
        ($ci:expr) => {{
            let ci = $ci;
            let qid = slots[ci].query_id() as u64;
            let outcome = slots[ci].take_outcome();
            let neighbors = outcome
                .neighbors
                .iter()
                .map(|&(id, d)| (ctx.shard.to_global(id), d))
                .collect();
            served += 1;
            free.push(ci);
            *ctx.stats.device.lock().unwrap() = device.stats();
            ctx.stats.served.store(served, Ordering::Release);
            // The collector may already have everything it needs and be
            // gone; that is not a worker error.
            let _ = out.send(WorkerMsg::Partial {
                qid,
                shard: ctx.shard.id,
                replica: ctx.replica,
                neighbors,
                n_io: outcome.n_io(),
                start: slot_start[ci],
                finish: ctx.epoch.elapsed().as_secs_f64(),
            });
        }};
    }

    // Admit one job into a free slot (there must be one).
    macro_rules! admit {
        ($job:expr) => {{
            let job: Job = $job;
            let ci = free.pop().expect("a slot is free");
            slot_start[ci] = ctx.epoch.elapsed().as_secs_f64();
            clock.observe(slot_start[ci]);
            driver.admit(
                &mut slots[ci],
                job.qid as usize,
                &job.point,
                &mut clock,
                &mut *device,
            );
            if !slots[ci].is_active() {
                harvest!(ci);
            }
        }};
    }

    loop {
        // Fenced: abandon queued and in-flight work immediately — the
        // replica is "dead" and the failover scan re-serves its
        // queries. The flag is latched into the lane first, so the
        // fence is sticky for this session: siblings that miss the
        // `is_down` window (an operator unfencing right away) still
        // see the latch and exit with us — a half-dead lane, or a
        // suppressed ReplicaDown, would strand in-flight tickets.
        // (Break, not return: the final stats publication below still
        // carries the work done before the fence.)
        if ctx.replica_state.is_down() || ctx.lane.fenced.load(Ordering::SeqCst) {
            ctx.lane.fenced.store(true, Ordering::SeqCst);
            break;
        }

        // Admit as many queued jobs as there are free slots.
        while !free.is_empty() && !disconnected {
            match jobs.try_recv() {
                Ok(job) => admit!(job),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }

        let active = nslots - free.len();
        if active == 0 {
            if disconnected {
                break;
            }
            // Idle: block briefly for work (timeout so a late disconnect
            // — or a fence — is noticed).
            match jobs.recv_timeout(Duration::from_millis(2)) {
                Ok(job) => admit!(job),
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
                Err(RecvTimeoutError::Timeout) => {}
            }
            continue;
        }

        // Drive the device.
        completions.clear();
        let poll_now = if ctx.sim_time {
            ctx.epoch.elapsed().as_secs_f64()
        } else {
            f64::MAX
        };
        device.poll(poll_now, &mut completions);
        if completions.is_empty() {
            if device.inflight() > 0 {
                if ctx.sim_time {
                    if let Some(t) = device.next_completion_time() {
                        // With free slots, cap the sleep so queued jobs
                        // are admitted promptly instead of waiting out a
                        // whole device service time.
                        let t = if free.is_empty() {
                            t
                        } else {
                            t.min(ctx.epoch.elapsed().as_secs_f64() + ADMIT_CHECK_S)
                        };
                        sleep_until(ctx.epoch, t);
                    }
                } else if free.is_empty() {
                    device.wait();
                } else {
                    // Free slots: wait for either new work or an I/O
                    // completion, whichever comes first.
                    match jobs.recv_timeout(Duration::from_secs_f64(ADMIT_CHECK_S)) {
                        Ok(job) => admit!(job),
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
            }
            continue;
        }
        // One read guard over the shard rows for the whole completion
        // batch; the write path only appends (and appends coordinates
        // before index entries reference them), so anything decoded
        // from these completions is covered by this view.
        let data = ctx.shard.data.read().unwrap();
        for comp in completions.drain(..) {
            clock.observe(comp.time);
            clock.observe(ctx.epoch.elapsed().as_secs_f64());
            let ci = completion_ctx(&comp);
            driver.handle_completion(&mut slots[ci], &comp, &data, &mut clock, &mut *device);
            if !slots[ci].is_active() {
                harvest!(ci);
            }
        }
        drop(data);
    }

    // Final publication: covers trailing device work (e.g. I/Os of
    // abandoned in-flight queries) that no harvest reported.
    *ctx.stats.device.lock().unwrap() = device.stats();
    ctx.stats.served.store(served, Ordering::Release);
}
