//! The long-lived service session: ticketed submission over persistent
//! per-replica reactors.
//!
//! PRs 1–4 exposed the service as run-to-completion harness calls:
//! `serve`, `serve_mixed` and `query_batch` each spun up serving threads,
//! consumed one pre-generated workload and tore everything down. A
//! serving tier has the inverse shape — start once, accept requests
//! from many concurrent callers, report continuously — and this module
//! is that inversion:
//!
//! * [`Session`] — created by
//!   [`ShardedService::start`](crate::service::ShardedService::start):
//!   brings up every replica's reactor (and its compute pool), the
//!   per-shard writer threads and the result collector **once**. [`Session::metrics`]
//!   returns incremental [`ServiceReport`] snapshots while the session
//!   runs (monotonic counters — see
//!   [`ServiceReport::interval_since`]); [`Session::shutdown`] drains
//!   outstanding work and joins every thread.
//! * [`Client`] — a cloneable submission handle ([`Session::client`]).
//!   Submission is **non-blocking**: [`Client::query`] returns a
//!   [`QueryTicket`], [`Client::write`] a [`WriteTicket`]; the caller's
//!   thread never waits for the engine.
//! * Tickets — per-request completion slots. A ticket **resolves
//!   exactly once** (poll with [`QueryTicket::poll`], block with
//!   [`QueryTicket::wait`]) with a [`QueryResult`] / [`WriteResult`]
//!   carrying the op's [`OpStatus`] and, when the op was shed at
//!   admission, the typed [`Overload`] with its `retry_after` backoff
//!   hint.
//!
//! ## Ticket state machine
//!
//! ```text
//! submit ──► PENDING ──────────────────────────► RESOLVED(Ok)
//!               │   collector merges last partial /
//!               │   writer applies the op
//!               └──────────────────────────────► RESOLVED(Shed)
//!                   admission rejects (Overload: queue budget,
//!                   no live replica, per-client cap, closed session)
//! ```
//!
//! A pending query lives in the session's **registry** (the routing
//! table, keyed by live ticket ids): its entry holds the per-shard
//! dispatch bitmasks the router wrote before the first job was sent,
//! the partials merged so far, and the completion slot. The failover
//! scan walks exactly the live tickets; a resolved ticket's entry is
//! gone.
//!
//! ## Write ids
//!
//! Inserts no longer take stream-positional indices into a caller
//! pool: the session **mints each insert's global id at admission**
//! (under the mint lock, held through the enqueue so per-shard queue
//! order matches mint order — the storage updater assigns local ids
//! positionally). The minted id is caller-visible in the resolved
//! [`WriteResult::id`]. This is what relaxes PR 3's "writes may never
//! shed" contract: a shed insert consumes no id, so [`Client::write`]
//! may shed writes with `Overload` exactly like queries, while
//! [`Client::write_blocking`] keeps the backpressure discipline (the
//! legacy wrappers use it). Deletes may target any id whose insert has
//! resolved (or a build-time id); deleting an id that is still
//! unassigned or not live fails the write
//! ([`WriteResult::applied`] = false) instead of corrupting anything.
//!
//! ## Concurrency contract
//!
//! Any number of clients (and clones) may submit concurrently; the
//! shared read/write admission budgets apply per replica as before,
//! and [`ServiceConfig::per_client_inflight`] additionally caps one
//! client's outstanding queries so a single greedy caller cannot
//! monopolize the shared read budget (client-side sheds carry
//! [`CLIENT_THROTTLE_SHARD`] as the `Overload::shard`). At most one
//! session should write at a time (the per-shard writers own the
//! index's read-write handles); concurrent read-only sessions over one
//! service are fine.
//!
//! [`ServiceReport`]: crate::service::ServiceReport
//! [`ServiceReport::interval_since`]: crate::service::ServiceReport::interval_since
//! [`ServiceConfig::per_client_inflight`]: crate::service::ServiceConfig::per_client_inflight

use crate::admission::{gated, GateHandle, GatedReceiver, GatedSender, Overload};
use crate::metrics::{LatencyHistogram, OpStatus};
use crate::reactor::{run_replica, Job, ReactorCtx, ReactorMsg, ReplicaStatsCell};
use crate::router::{
    clear_routed_bit, is_routed_to, lane_states, quota, RoutePolicy, Router, RouterStats,
};
use crate::service::{dedup_batch, BatchQueryReport, DeviceSpec, ServiceConfig, ServiceReport};
use crate::shard::Shard;
use crate::shared_sim::SharedSimArray;
use crate::topology::Topology;
use crate::trace::{NetStage, ShardSpan, SpanKind, TraceSpan, Tracer};
use crate::update::ShardUpdater;
use crossbeam::channel::{unbounded, Receiver, Sender};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::{BlockCache, CachedDevice};
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, SimStorage};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::layout::BLOCK_SIZE;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// The `Overload::shard` value of a **client-side** shed — a rejection
/// not attributable to any shard's queue budget: the client's own
/// [`ServiceConfig::per_client_inflight`] fairness cap, an insert that
/// could not immediately take the id-mint lock, or a session that was
/// already shut down. The closed-session case is terminal and reports
/// `retry_after == f64::INFINITY`; the others carry the usual finite
/// hint.
///
/// [`ServiceConfig::per_client_inflight`]: crate::service::ServiceConfig::per_client_inflight
pub const CLIENT_THROTTLE_SHARD: usize = usize::MAX;

/// Resolved outcome of a [`QueryTicket`].
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// [`OpStatus::Ok`] for a served query, [`OpStatus::Shed`] for one
    /// rejected at admission.
    pub status: OpStatus,
    /// Merged global top-k, distance ascending. Empty when shed (and
    /// possibly short when a shard lost its last replica mid-flight —
    /// degraded answers, never invented ids).
    pub neighbors: Vec<(u32, f32)>,
    /// The admission rejection, `Some` iff `status == Shed`; carries
    /// the `retry_after` backoff hint.
    pub overload: Option<Overload>,
    /// Seconds from the ticket's submission reference to the last
    /// shard's finish (0 when shed).
    pub latency: f64,
    /// Seconds from the first reactor slot admitting the query to the
    /// last shard's finish — pure service time, enqueue wait excluded
    /// (0 when shed).
    pub service_latency: f64,
    /// Device I/Os this query's merged partials issued across shards.
    pub n_io: u64,
}

/// Resolved outcome of a [`WriteTicket`].
#[derive(Clone, Debug)]
pub struct WriteResult {
    /// [`OpStatus::Ok`] for a write the shard writer processed (whether
    /// or not it applied cleanly), [`OpStatus::Shed`] for one rejected
    /// at admission ([`Client::write`]; a blocking write sheds only on
    /// a closed session — never for capacity).
    pub status: OpStatus,
    /// True when the updater applied the op. False for shed writes,
    /// updater errors, and deletes of ids that were never assigned or
    /// already deleted from the index.
    pub applied: bool,
    /// The global id the session minted for this insert, or the
    /// delete's target id. `None` for a shed insert (no id is consumed
    /// — see the module docs on the relaxed shedding contract).
    pub id: Option<u32>,
    /// The admission rejection, `Some` iff `status == Shed`.
    pub overload: Option<Overload>,
    /// Seconds from the ticket's submission reference to the write
    /// being applied (0 when shed). Includes writer-queue wait.
    pub latency: f64,
    /// Seconds from the writer dequeuing the op to it being applied
    /// (0 when shed).
    pub service_latency: f64,
}

/// One write operation for [`Client::write`] /
/// [`Client::write_blocking`].
#[derive(Clone, Copy, Debug)]
pub enum WriteOp<'a> {
    /// Insert a point; the session mints its global id at admission
    /// (visible in [`WriteResult::id`]).
    Insert(&'a [f32]),
    /// Delete the object with this global id. The id must come from a
    /// resolved insert (or be a build-time id); deleting an id that is
    /// not live fails the write instead of shedding or panicking.
    Delete(u32),
}

/// The shared completion slot behind a ticket. Resolves exactly once.
pub(crate) struct Slot<T> {
    id: u64,
    state: Mutex<SlotState<T>>,
    cv: Condvar,
    /// Per-client in-flight gauge, decremented on resolution (query
    /// slots of capped clients only).
    gauge: Option<Arc<AtomicUsize>>,
}

struct SlotState<T> {
    outcome: Option<T>,
    /// One-shot completion notification (the legacy wrappers' pump
    /// loops use this to multiplex over a window of tickets).
    notify: Option<Sender<u64>>,
}

impl<T: Clone> Slot<T> {
    fn new(id: u64, notify: Option<Sender<u64>>, gauge: Option<Arc<AtomicUsize>>) -> Self {
        Self {
            id,
            state: Mutex::new(SlotState {
                outcome: None,
                notify,
            }),
            cv: Condvar::new(),
            gauge,
        }
    }

    /// Resolve the slot. Exactly-once is a hard invariant: the debug
    /// assertion trips if any path resolves twice.
    fn resolve(&self, outcome: T) {
        let notify = {
            let mut st = self.state.lock().unwrap();
            debug_assert!(st.outcome.is_none(), "ticket {} resolved twice", self.id);
            st.outcome = Some(outcome);
            st.notify.take()
        };
        if let Some(g) = &self.gauge {
            g.fetch_sub(1, Ordering::AcqRel);
        }
        self.cv.notify_all();
        if let Some(tx) = notify {
            // The pump may have stopped listening; that is not an error.
            let _ = tx.send(self.id);
        }
    }

    fn poll(&self) -> Option<T> {
        self.state.lock().unwrap().outcome.clone()
    }

    fn wait(&self) -> T {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(out) = &st.outcome {
                return out.clone();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn is_resolved(&self) -> bool {
        self.state.lock().unwrap().outcome.is_some()
    }
}

macro_rules! ticket {
    ($(#[$doc:meta])* $name:ident, $result:ty) => {
        $(#[$doc])*
        pub struct $name {
            slot: Arc<Slot<$result>>,
        }

        impl $name {
            /// The session-unique ticket id.
            pub fn id(&self) -> u64 {
                self.slot.id
            }

            /// True once the ticket has resolved ([`Self::poll`] would
            /// return `Some`).
            pub fn is_resolved(&self) -> bool {
                self.slot.is_resolved()
            }

            /// Non-blocking check: the resolved outcome, or `None`
            /// while the op is still pending.
            pub fn poll(&self) -> Option<$result> {
                self.slot.poll()
            }

            /// Block until the op resolves and return its outcome.
            pub fn wait(self) -> $result {
                self.slot.wait()
            }

            /// Block like [`Self::wait`] without consuming the ticket.
            pub fn wait_ref(&self) -> $result {
                self.slot.wait()
            }
        }
    };
}

ticket!(
    /// Handle to one submitted query ([`Client::query`]). Resolves
    /// exactly once with a [`QueryResult`]; see the module docs for the
    /// state machine.
    QueryTicket,
    QueryResult
);
ticket!(
    /// Handle to one submitted write ([`Client::write`] /
    /// [`Client::write_blocking`]). Resolves exactly once with a
    /// [`WriteResult`].
    WriteTicket,
    WriteResult
);

/// A registry entry: one in-flight (dispatched, unresolved) query.
pub(crate) struct InFlight {
    qid: u64,
    ref_time: f64,
    /// Network stage stamps for queries that arrived over a socket
    /// ([`crate::net`]); `None` for in-process submissions.
    net: Option<NetStage>,
    point: Arc<[f32]>,
    slot: Arc<Slot<QueryResult>>,
    /// Per-shard dispatch bitmasks — the routing table row for this
    /// ticket, written by the router before the first job is sent.
    masks: Box<[AtomicU64]>,
    /// Trace stage stamp: seconds (as `f64` bits) when routing
    /// completed for this ticket. Initialized to `ref_time` so a span
    /// assembled before the router stamps it shows zero route time.
    routed: AtomicU64,
    /// Partial-merge state; mutated by the collector thread only.
    acc: Mutex<Accum>,
}

/// Per-query accumulation while shard partials trickle in. The number
/// of partials a shard owes is not stored here: it is the ticket's live
/// dispatch quota (the mask population count — the replicas actually
/// sent to, shrunk by broadcast fences), so the accounting follows
/// failover re-routing exactly.
struct Accum {
    /// Partials received per shard; a partial for a shard that already
    /// met its quota is a failover duplicate and is dropped.
    got: Vec<u8>,
    finished: bool,
    neighbors: Vec<(u32, f32)>,
    /// Earliest shard service start (min over partials).
    start: f64,
    /// Latest shard finish (max over partials).
    finish: f64,
    n_io: u64,
    /// Per-partial trace windows, collected only when tracing is on.
    spans: Vec<ShardSpan>,
}

/// Monotonic session counters behind [`Session::metrics`]. Bounded:
/// latencies go into fixed-size log-bucketed histograms (no
/// per-completed-op state), so a session can run for days without the
/// metrics path growing. Snapshot deltas slice exactly via
/// [`ServiceReport::interval_since`] (histogram subtraction).
///
/// [`ServiceReport::interval_since`]: crate::service::ServiceReport::interval_since
struct MetricsInner {
    read_hist: LatencyHistogram,
    read_service_hist: LatencyHistogram,
    read_wait_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
    write_service_hist: LatencyHistogram,
    write_wait_hist: LatencyHistogram,
    completed_queries: usize,
    writes_applied: usize,
    shed_queries: usize,
    shed_writes: usize,
    writes_failed: usize,
    total_io: u64,
    /// Bucket blocks returned to shard free lists (delete-time
    /// empty-block unlink + maintenance compaction), summed over
    /// shards.
    blocks_reclaimed: u64,
    /// Occupancy-filter bits cleared by maintenance tombstone GC.
    filter_bits_cleared: u64,
    /// Bytes made reusable by reclamation.
    bytes_reclaimed: u64,
    /// Deletes that found their victim missing from some chains
    /// (pre-existing index inconsistency), summed over shards.
    chain_inconsistencies: u64,
    /// Seconds since the session epoch of the latest terminal event.
    last_event: f64,
}

impl Default for MetricsInner {
    fn default() -> Self {
        Self {
            read_hist: LatencyHistogram::new(),
            read_service_hist: LatencyHistogram::new(),
            read_wait_hist: LatencyHistogram::new(),
            write_hist: LatencyHistogram::new(),
            write_service_hist: LatencyHistogram::new(),
            write_wait_hist: LatencyHistogram::new(),
            completed_queries: 0,
            writes_applied: 0,
            shed_queries: 0,
            shed_writes: 0,
            writes_failed: 0,
            total_io: 0,
            blocks_reclaimed: 0,
            filter_bits_cleared: 0,
            bytes_reclaimed: 0,
            chain_inconsistencies: 0,
            last_event: 0.0,
        }
    }
}

/// Cache counters at session start, for per-session deltas.
#[derive(Clone, Copy, Debug, Default)]
struct CacheSnapshot {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    stale_fills: u64,
    warmed: u64,
    admission_rejected: u64,
    table_hits: u64,
    table_misses: u64,
    bucket_hits: u64,
    bucket_misses: u64,
    coalesced: u64,
}

/// State shared by the session handle, its clients, the collector and
/// the writer threads.
pub(crate) struct SessionShared {
    topo: Arc<Topology>,
    config: ServiceConfig,
    epoch: Instant,
    point_bytes: usize,
    /// Dropped (set to `None`) at shutdown — that closes every
    /// replica's queue.
    router: RwLock<Option<Arc<Router>>>,
    router_stats: Arc<RouterStats>,
    /// Per-shard write queues; dropped at shutdown.
    write_txs: RwLock<Option<Vec<GatedSender<WriteJob>>>>,
    /// Statistics-only gate views (outlive the queues).
    read_gates: Vec<Vec<GateHandle>>,
    write_gates: Vec<GateHandle>,
    /// Live tickets — the routing table, keyed by ticket id.
    registry: Mutex<HashMap<u64, Arc<InFlight>>>,
    metrics: Mutex<MetricsInner>,
    next_ticket: AtomicU64,
    /// Next unassigned global id; the lock is held through the enqueue
    /// so per-shard write-queue order matches mint order.
    mint: Mutex<u64>,
    /// `[shard][replica]` live statistics cells (one per reactor).
    replica_cells: Vec<Vec<Arc<ReplicaStatsCell>>>,
    cache_snap: Vec<CacheSnapshot>,
    /// Request tracing: sampled span ring + slow-query log.
    tracer: Tracer,
}

impl SessionShared {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Client-side shed with a *retryable* hint (fairness cap, mint
    /// contention): one of the client's own ops resolving frees the
    /// way, so a quick retry is reasonable.
    fn shed_overload(&self, shard: usize) -> Overload {
        Overload {
            shard,
            depth: 0,
            queued_bytes: 0,
            retry_after: Overload::MIN_RETRY_AFTER,
        }
    }

    /// Shed because the session is shut down — a **terminal** state:
    /// `retry_after` is infinite so backoff-honoring clients stop
    /// instead of busy-retrying a dead session forever.
    fn closed_overload(&self) -> Overload {
        Overload {
            shard: CLIENT_THROTTLE_SHARD,
            depth: 0,
            queued_bytes: 0,
            retry_after: f64::INFINITY,
        }
    }

    fn book_shed_query(&self, now: f64) {
        let mut m = self.metrics.lock().unwrap();
        m.shed_queries += 1;
        m.last_event = m.last_event.max(now);
    }

    fn book_shed_write(&self, now: f64) {
        let mut m = self.metrics.lock().unwrap();
        m.shed_writes += 1;
        m.last_event = m.last_event.max(now);
    }
}

fn shed_query_result(e: Overload) -> QueryResult {
    QueryResult {
        status: OpStatus::Shed,
        neighbors: Vec::new(),
        overload: Some(e),
        latency: 0.0,
        service_latency: 0.0,
        n_io: 0,
    }
}

fn shed_write_result(e: Overload, id: Option<u32>) -> WriteResult {
    WriteResult {
        status: OpStatus::Shed,
        applied: false,
        id,
        overload: Some(e),
        latency: 0.0,
        service_latency: 0.0,
    }
}

/// A write admitted to the service, bound for one shard's writer.
pub(crate) struct WriteJob {
    slot: Arc<Slot<WriteResult>>,
    ref_time: f64,
    /// Network stage stamps ([`crate::net`] submissions only).
    net: Option<NetStage>,
    /// Seconds when the job cleared admission and entered the shard
    /// queue — the "routed" stamp of a write's trace span.
    enqueued: f64,
    /// Global id the session minted (inserts) or targets (deletes).
    global_id: u32,
    kind: WriteKind,
}

pub(crate) enum WriteKind {
    Insert { point: Arc<[f32]> },
    Delete,
}

/// Next unassigned global id of the topology: inserts continue the
/// sequence where earlier sessions left it (build-time total + rows
/// appended so far).
pub(crate) fn insert_base(topo: &Topology) -> usize {
    let shards = topo.shards();
    shards.plan().base_total()
        + shards
            .shards()
            .iter()
            .map(|s| s.num_rows() - s.base_len())
            .sum::<usize>()
}

/// A cloneable, non-blocking submission handle onto a [`Session`].
///
/// Clones share the per-client in-flight gauge (they are the *same*
/// client for fairness purposes); [`Session::client`] mints an
/// independent one.
pub struct Client {
    shared: Arc<SessionShared>,
    /// Outstanding queries of this client (shared by clones).
    inflight: Arc<AtomicUsize>,
    /// Cap on `inflight` ([`ServiceConfig::per_client_inflight`]).
    ///
    /// [`ServiceConfig::per_client_inflight`]: crate::service::ServiceConfig::per_client_inflight
    cap: usize,
}

impl Clone for Client {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            inflight: Arc::clone(&self.inflight),
            cap: self.cap,
        }
    }
}

impl Client {
    /// Seconds since the session epoch (the clock every ticket and
    /// trace timestamp is on). The net tier stamps frame arrival and
    /// decode instants with this.
    pub(crate) fn now(&self) -> f64 {
        self.shared.now()
    }

    /// A full report snapshot through this handle — what
    /// [`Session::metrics`] returns, reachable from threads that hold
    /// only a client (the net tier's metrics frames).
    pub(crate) fn report(&self) -> ServiceReport {
        build_report(&self.shared)
    }

    /// Point dimensionality the session serves. The net tier validates
    /// decoded frames against this *before* submitting — a hostile
    /// wire payload must become a typed error frame, not an assertion
    /// failure inside [`Client::query`].
    pub(crate) fn dim(&self) -> usize {
        self.shared.topo.shards().dim()
    }

    /// Mint an **independent** client (fresh in-flight gauge) with an
    /// explicit cap, overriding [`ServiceConfig::per_client_inflight`].
    /// The net tier mints one per **tenant** as tenants appear on the
    /// wire — its clones (one per connection) share the gauge, so the
    /// cap bounds the tenant across all its connections.
    ///
    /// [`ServiceConfig::per_client_inflight`]: crate::service::ServiceConfig::per_client_inflight
    pub(crate) fn sibling_with_cap(&self, cap: usize) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            inflight: Arc::new(AtomicUsize::new(0)),
            cap,
        }
    }

    /// Submit one query; never blocks. The returned ticket resolves
    /// with the merged global top-k, or immediately with
    /// [`OpStatus::Shed`] + [`Overload`] when admission rejects it
    /// (shard queue budget, no live replica, the per-client cap, or a
    /// closed session). Latency is measured from now.
    pub fn query(&self, point: &[f32]) -> QueryTicket {
        self.submit_query(point, None, None, None)
    }

    /// [`Client::query`] with an explicit latency reference: seconds
    /// since [`Session::epoch`] the op is *considered* to have arrived.
    /// Load generators replaying an arrival schedule use this so
    /// latency covers queueing delay from the scheduled arrival
    /// (coordinated omission) and retries are measured from the first
    /// attempt.
    pub fn query_at(&self, point: &[f32], ref_time: f64) -> QueryTicket {
        self.submit_query(point, Some(ref_time), None, None)
    }

    pub(crate) fn submit_query(
        &self,
        point: &[f32],
        ref_time: Option<f64>,
        notify: Option<Sender<u64>>,
        net: Option<NetStage>,
    ) -> QueryTicket {
        let shared = &self.shared;
        assert_eq!(
            point.len(),
            shared.topo.shards().dim(),
            "query dimensionality"
        );
        let qid = shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        let gauge = (self.cap != usize::MAX).then(|| Arc::clone(&self.inflight));
        let slot = Arc::new(Slot::new(qid, notify, gauge));
        let ticket = QueryTicket {
            slot: Arc::clone(&slot),
        };
        let now = shared.now();
        let ref_time = ref_time.unwrap_or(now);

        // Per-client fairness: cap this client's outstanding queries so
        // one greedy caller cannot monopolize the shared read budget.
        if self.cap != usize::MAX {
            let n = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
            if n > self.cap {
                shared.book_shed_query(now);
                slot.resolve(shed_query_result(
                    shared.shed_overload(CLIENT_THROTTLE_SHARD),
                ));
                return ticket;
            }
        }

        let guard = shared.router.read().unwrap();
        let Some(router) = guard.as_ref() else {
            drop(guard);
            shared.book_shed_query(now);
            slot.resolve(shed_query_result(shared.closed_overload()));
            return ticket;
        };
        let num_shards = shared.topo.num_shards();
        let entry = Arc::new(InFlight {
            qid,
            ref_time,
            net,
            point: Arc::from(point),
            slot: Arc::clone(&slot),
            masks: (0..num_shards).map(|_| AtomicU64::new(0)).collect(),
            routed: AtomicU64::new(ref_time.to_bits()),
            acc: Mutex::new(Accum {
                got: vec![0; num_shards],
                finished: false,
                neighbors: Vec::new(),
                start: f64::MAX,
                finish: 0.0,
                n_io: 0,
                spans: Vec::new(),
            }),
        });
        shared
            .registry
            .lock()
            .unwrap()
            .insert(qid, Arc::clone(&entry));
        if let Err(e) = router.try_fanout(
            qid,
            &entry.point,
            &entry.masks,
            shared.point_bytes,
            &entry.routed,
        ) {
            shared.registry.lock().unwrap().remove(&qid);
            shared.book_shed_query(now);
            slot.resolve(shed_query_result(e));
        }
        ticket
    }

    /// Submit one write; never blocks. A write that overflows the
    /// owning shard's write budget is **shed** (ticket resolves
    /// [`OpStatus::Shed`] with the `Overload`) — safe since the session
    /// mints insert ids at admission, so a shed insert consumes no id
    /// (the relaxed contract; see the module docs). An insert that
    /// cannot immediately take the id-mint lock (a concurrent
    /// [`Client::write_blocking`] insert is stalled on a full queue,
    /// which holds it) is also shed, with
    /// [`CLIENT_THROTTLE_SHARD`] as the `Overload::shard` — the
    /// never-blocks contract beats minting. Latency is measured from
    /// now.
    pub fn write(&self, op: WriteOp<'_>) -> WriteTicket {
        self.submit_write(op, None, false, None, None)
    }

    /// Submit one write under **backpressure**: a full write queue
    /// blocks this call until the op is admitted — nothing is shed for
    /// capacity reasons. The discipline the legacy `serve_mixed`
    /// wrapper keeps. While an insert waits, other inserts (which mint
    /// after it) wait behind the mint lock. The one shed a blocking
    /// write can still report is the terminal closed-session rejection
    /// (`retry_after == f64::INFINITY`) — blocking forever on a dead
    /// session would be worse.
    pub fn write_blocking(&self, op: WriteOp<'_>) -> WriteTicket {
        self.submit_write(op, None, true, None, None)
    }

    pub(crate) fn submit_write(
        &self,
        op: WriteOp<'_>,
        ref_time: Option<f64>,
        blocking: bool,
        notify: Option<Sender<u64>>,
        net: Option<NetStage>,
    ) -> WriteTicket {
        let shared = &self.shared;
        let wid = shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot::new(wid, notify, None));
        let ticket = WriteTicket {
            slot: Arc::clone(&slot),
        };
        let now = shared.now();
        let ref_time = ref_time.unwrap_or(now);
        let guard = shared.write_txs.read().unwrap();
        let Some(txs) = guard.as_ref() else {
            drop(guard);
            shared.book_shed_write(now);
            let id = match op {
                WriteOp::Insert(_) => None,
                WriteOp::Delete(g) => Some(g),
            };
            slot.resolve(shed_write_result(shared.closed_overload(), id));
            return ticket;
        };
        let plan = shared.topo.shards().plan();
        match op {
            WriteOp::Insert(point) => {
                assert_eq!(
                    point.len(),
                    shared.topo.shards().dim(),
                    "insert dimensionality"
                );
                // Mint under the lock, held through the enqueue: the
                // mint value determines the owning shard (round-robin
                // id arithmetic), and per-shard queue order must match
                // mint order for the updater's positional local ids to
                // line up with the plan's arithmetic. The non-blocking
                // path only *tries* the lock — a blocking insert
                // stalled on a full queue holds it for the whole stall,
                // and `write`'s never-blocks contract beats minting.
                let mut mint = if blocking {
                    shared.mint.lock().unwrap()
                } else {
                    match shared.mint.try_lock() {
                        Ok(m) => m,
                        Err(_) => {
                            drop(guard);
                            shared.book_shed_write(now);
                            slot.resolve(shed_write_result(
                                shared.shed_overload(CLIENT_THROTTLE_SHARD),
                                None,
                            ));
                            return ticket;
                        }
                    }
                };
                let g = *mint;
                let s = plan.shard_of_any(g as usize);
                let shard = &shared.topo.shards().shards()[s];
                let id_space = 1u64 << shard.index.codec().id_bits;
                if plan.local_of(g as usize) as u64 >= id_space {
                    // Id space exhausted: fail (not shed) without
                    // consuming the id — the shard needs a rebuild with
                    // a larger `ShardBuildConfig::capacity`.
                    drop(mint);
                    drop(guard);
                    let finish = shared.now();
                    let mut m = shared.metrics.lock().unwrap();
                    m.writes_failed += 1;
                    m.last_event = m.last_event.max(finish);
                    drop(m);
                    slot.resolve(WriteResult {
                        status: OpStatus::Ok,
                        applied: false,
                        id: None,
                        overload: None,
                        latency: finish - ref_time,
                        service_latency: 0.0,
                    });
                    return ticket;
                }
                let job = WriteJob {
                    slot: Arc::clone(&slot),
                    ref_time,
                    net,
                    enqueued: shared.now(),
                    global_id: g as u32,
                    kind: WriteKind::Insert {
                        point: Arc::from(point),
                    },
                };
                if blocking {
                    txs[s].send_blocking(job, shared.point_bytes);
                    *mint += 1;
                } else {
                    match txs[s].try_send(job, shared.point_bytes) {
                        Ok(()) => *mint += 1,
                        Err(e) => {
                            drop(mint);
                            drop(guard);
                            shared.book_shed_write(now);
                            slot.resolve(shed_write_result(e, None));
                        }
                    }
                }
            }
            WriteOp::Delete(g) => {
                let s = plan.shard_of_any(g as usize);
                let job = WriteJob {
                    slot: Arc::clone(&slot),
                    ref_time,
                    net,
                    enqueued: shared.now(),
                    global_id: g,
                    kind: WriteKind::Delete,
                };
                let cost = std::mem::size_of::<u32>();
                if blocking {
                    txs[s].send_blocking(job, cost);
                } else if let Err(e) = txs[s].try_send(job, cost) {
                    drop(guard);
                    shared.book_shed_write(now);
                    slot.resolve(shed_write_result(e, Some(g)));
                }
            }
        }
        ticket
    }
}

/// A running service instance: persistent per-replica reactors, writers
/// and collector. See the module docs for the lifecycle and
/// [`ShardedService::start`] for construction.
///
/// [`ShardedService::start`]: crate::service::ShardedService::start
pub struct Session {
    shared: Arc<SessionShared>,
    reactor_threads: Vec<JoinHandle<()>>,
    writer_threads: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    closed: bool,
}

impl Session {
    /// Bring the service up: spawn every replica's reactor (which
    /// brings up its own compute pool), one writer thread per shard
    /// (updaters open lazily on the first write, so read-only sessions
    /// never take the shards' write handles) and the collector. Warms cold replica caches from
    /// their warmest sibling when
    /// [`ServiceConfig::cache_warm_blocks`] is nonzero.
    ///
    /// [`ServiceConfig::cache_warm_blocks`]: crate::service::ServiceConfig::cache_warm_blocks
    pub(crate) fn start(topo: Arc<Topology>, config: ServiceConfig) -> Self {
        let num_shards = topo.num_shards();
        let replicas = config.replicas_per_shard;
        let wpr = config.workers_per_replica;
        let epoch = Instant::now();
        // Snapshot the cache counters before warming, so the blocks
        // this session warms at start count in its `cache_warmed`
        // delta.
        let cache_snap = cache_snapshots(&topo);

        // Replica-start cache warming: a cold replica copies the
        // working set of its warmest sibling instead of paying the
        // cold-start misses (writers are not running yet, so the copy
        // cannot race an invalidation sweep).
        if config.cache_warm_blocks > 0 {
            for s in 0..num_shards {
                for r in 0..replicas {
                    let cold = topo.replica(s, r).cache().is_some_and(|c| c.is_empty());
                    if cold {
                        topo.warm_replica(s, r, config.cache_warm_blocks);
                    }
                }
            }
        }

        let engine = config.engine();
        let sim_time = config.device.is_sim();
        let arrays = build_arrays(&topo, &config);
        let lanes = Arc::new(lane_states(num_shards, replicas));

        let mut lane_txs: Vec<Vec<GatedSender<Job>>> = Vec::with_capacity(num_shards);
        let mut lane_rxs: Vec<Vec<GatedReceiver<Job>>> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..replicas)
                .map(|_| gated::<Job>(s, config.admission.read))
                .unzip();
            lane_txs.push(txs);
            lane_rxs.push(rxs);
        }
        let read_gates: Vec<Vec<GateHandle>> = lane_txs
            .iter()
            .map(|row| row.iter().map(|tx| tx.stats_handle()).collect())
            .collect();
        let router_stats = Arc::new(RouterStats::default());
        let router = Arc::new(Router::new(
            Arc::clone(&topo),
            lane_txs,
            Arc::clone(&lanes),
            config.routing,
            0xE25_0E25,
            Arc::clone(&router_stats),
            // One reactor per replica is the lane's only queue
            // receiver, so one exit marks the lane dead.
            1,
            epoch,
        ));

        let write_channels: Vec<(GatedSender<WriteJob>, GatedReceiver<WriteJob>)> = (0..num_shards)
            .map(|s| gated(s, config.admission.write))
            .collect();
        let write_gates: Vec<GateHandle> = write_channels
            .iter()
            .map(|(tx, _)| tx.stats_handle())
            .collect();
        let (write_txs, write_rxs): (Vec<_>, Vec<_>) = write_channels.into_iter().unzip();

        let replica_cells: Vec<Vec<Arc<ReplicaStatsCell>>> = (0..num_shards)
            .map(|_| {
                (0..replicas)
                    .map(|_| Arc::new(ReplicaStatsCell::default()))
                    .collect()
            })
            .collect();

        let mint = insert_base(&topo) as u64;
        let point_bytes = topo.shards().dim() * std::mem::size_of::<f32>();
        let shared = Arc::new(SessionShared {
            topo: Arc::clone(&topo),
            config: config.clone(),
            epoch,
            point_bytes,
            router: RwLock::new(Some(router)),
            router_stats,
            write_txs: RwLock::new(Some(write_txs)),
            read_gates,
            write_gates,
            registry: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsInner::default()),
            next_ticket: AtomicU64::new(0),
            mint: Mutex::new(mint),
            replica_cells,
            cache_snap,
            tracer: Tracer::new(
                config.trace_sample,
                config.trace_capacity,
                config.slow_query_threshold,
                config.slow_log_capacity,
            ),
        });

        let (msg_tx, msg_rx) = unbounded::<ReactorMsg>();
        let mut reactor_threads = Vec::with_capacity(num_shards * replicas);
        for s in 0..num_shards {
            for r in 0..replicas {
                // One device handle per replica — the reactor owns it
                // and multiplexes every in-flight slot over it.
                let device = make_device(
                    &config.device,
                    topo.shard(s),
                    &arrays[s],
                    r,
                    topo.replica(s, r).cache(),
                    config.cache_coalescing,
                );
                let topo = Arc::clone(&topo);
                let lanes = Arc::clone(&lanes);
                let cell = Arc::clone(&shared.replica_cells[s][r]);
                let engine = engine.clone();
                let jobs = lane_rxs[s][r].clone();
                let tx = msg_tx.clone();
                reactor_threads.push(std::thread::spawn(move || {
                    let ctx = ReactorCtx {
                        shard: topo.shard(s),
                        replica: r,
                        replica_state: topo.replica(s, r),
                        lane: &lanes[s][r],
                        stats: &cell,
                        engine: &engine,
                        compute_threads: wpr,
                        sim_time,
                        epoch,
                    };
                    run_replica(ctx, device, jobs, tx);
                }));
            }
        }
        drop(lane_rxs);
        drop(msg_tx);

        let writer_threads: Vec<JoinHandle<()>> = write_rxs
            .into_iter()
            .enumerate()
            .map(|(s, jobs)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || run_writer(&shared, s, jobs))
            })
            .collect();

        let collector = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || run_collector(&shared, msg_rx)))
        };

        Self {
            shared,
            reactor_threads,
            writer_threads,
            collector,
            closed: false,
        }
    }

    /// Mint a new client handle. Each call creates an independent
    /// client for the per-client fairness cap; [`Client::clone`] shares
    /// one.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            inflight: Arc::new(AtomicUsize::new(0)),
            cap: self.shared.config.per_client_inflight,
        }
    }

    /// An **uncapped** client for the service's own internal pumps
    /// (legacy wrappers, batch serving): the per-client fairness cap
    /// protects external callers from each other, not the service from
    /// itself.
    pub(crate) fn internal_client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            inflight: Arc::new(AtomicUsize::new(0)),
            cap: usize::MAX,
        }
    }

    /// Live (unresolved) tickets in the session registry — the routing
    /// table's population. 0 once every submitted op has resolved; the
    /// net suites assert this returns to 0 after a connection dies
    /// mid-flight (no leaked routing-table entries).
    pub fn outstanding_tickets(&self) -> usize {
        self.shared.registry.lock().unwrap().len()
    }

    /// The serving topology (fence/unfence replicas here; a fence takes
    /// effect on this session's reactors immediately, an unfence at the
    /// next session start).
    pub fn topology(&self) -> &Topology {
        &self.shared.topo
    }

    /// The instant all session timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.shared.epoch
    }

    /// Seconds since the session epoch.
    pub fn now(&self) -> f64 {
        self.shared.now()
    }

    /// An incremental snapshot of the session's counters as a
    /// [`ServiceReport`]: monotonic latency samples and shed / failover
    /// / device / load counters covering everything that has resolved
    /// so far. Callable at any time, including mid-run and after
    /// shutdown. Per-ticket *results* live on the tickets, so
    /// [`ServiceReport::results`] holds empty placeholders (shape only:
    /// one entry per terminal query, completed first, then shed —
    /// keeping `qps`/`shed_rate`/`latency` arithmetic exact). Interval
    /// reporting: keep the previous snapshot and call
    /// [`ServiceReport::interval_since`].
    ///
    /// [`ServiceReport`]: crate::service::ServiceReport
    /// [`ServiceReport::results`]: crate::service::ServiceReport::results
    /// [`ServiceReport::interval_since`]: crate::service::ServiceReport::interval_since
    pub fn metrics(&self) -> ServiceReport {
        build_report(&self.shared)
    }

    /// The most recent **sampled** trace spans (newest last), from the
    /// session's lock-free trace ring. Empty unless
    /// [`ServiceConfig::trace_sample`] is nonzero.
    ///
    /// [`ServiceConfig::trace_sample`]: crate::service::ServiceConfig::trace_sample
    pub fn traces(&self) -> Vec<TraceSpan> {
        self.shared.tracer.traces()
    }

    /// The slow-query log: full span breakdowns of every retained
    /// request whose end-to-end latency exceeded
    /// [`ServiceConfig::slow_query_threshold`] (newest last, capped at
    /// [`ServiceConfig::slow_log_capacity`]).
    ///
    /// [`ServiceConfig::slow_query_threshold`]: crate::service::ServiceConfig::slow_query_threshold
    /// [`ServiceConfig::slow_log_capacity`]: crate::service::ServiceConfig::slow_log_capacity
    pub fn slow_queries(&self) -> Vec<TraceSpan> {
        self.shared.tracer.slow_queries()
    }

    /// Serve one **batch request** through this session: byte-identical
    /// queries are deduplicated before the engine (see
    /// [`dedup_batch`](crate::service::dedup_batch())), each unique query
    /// is submitted as its own ticket at one shared arrival instant,
    /// and the merged results are fanned back out to every duplicate.
    /// Blocks until the whole batch resolves.
    ///
    /// On a session shared with concurrent submitters, the report's
    /// session-level fields (`device`, `total_io`, `failovers`,
    /// `peak_queue_depth`) are deltas/high-waters that may include the
    /// concurrent work; per-query results, statuses and latencies are
    /// exact.
    pub fn query_batch(&self, batch: &Dataset) -> BatchQueryReport {
        let shards = self.shared.topo.shards();
        assert_eq!(batch.dim(), shards.dim(), "query dimensionality");
        let num_shards = shards.num_shards();
        let replicas = self.shared.config.replicas_per_shard;
        let workers_total = num_shards * replicas * self.shared.config.workers_per_replica;
        let dedup = dedup_batch(batch);
        let nu = dedup.uniques.len();
        if batch.is_empty() {
            return BatchQueryReport {
                results: Vec::new(),
                statuses: Vec::new(),
                latencies: Vec::new(),
                unique: 0,
                collapsed: 0,
                shed: 0,
                failovers: 0,
                peak_queue_depth: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }

        let before_io = self.shared.metrics.lock().unwrap().total_io;
        let before_failovers = self.shared.router_stats.failovers();
        let before_device = aggregate_device(&self.shared);

        // One arrival instant for the whole request; the internal
        // client is uncapped (fairness applies to external clients).
        let client = self.internal_client();
        let ref_t = self.now();
        let tickets: Vec<QueryTicket> = dedup
            .uniques
            .iter()
            .map(|&i| client.query_at(batch.point(i), ref_t))
            .collect();
        let unique_results: Vec<QueryResult> = tickets.into_iter().map(QueryTicket::wait).collect();

        let n = batch.len();
        let mut results = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for i in 0..n {
            let u = &unique_results[dedup.rep[i]];
            results.push(u.neighbors.clone());
            statuses.push(u.status);
            latencies.push(u.latency);
        }
        let shed = statuses.iter().filter(|&&s| s == OpStatus::Shed).count();
        let duration = unique_results
            .iter()
            .map(|r| r.latency)
            .fold(0.0f64, f64::max);
        let mut device = aggregate_device(&self.shared);
        device_sub(&mut device, &before_device);
        BatchQueryReport {
            results,
            statuses,
            latencies,
            unique: nu,
            collapsed: n - nu,
            shed,
            failovers: self.shared.router_stats.failovers() - before_failovers,
            peak_queue_depth: peak_queue_depth(&self.shared),
            duration,
            device,
            total_io: self.shared.metrics.lock().unwrap().total_io - before_io,
            workers: workers_total,
            shards: num_shards,
        }
    }

    /// Drain and stop: close the queues (new submissions resolve
    /// [`OpStatus::Shed`]), let reactors finish every admitted op — so
    /// **every outstanding ticket resolves** — and join every thread.
    /// Returns the final [`ServiceReport`] snapshot.
    ///
    /// [`ServiceReport`]: crate::service::ServiceReport
    pub fn shutdown(mut self) -> ServiceReport {
        self.close();
        build_report(&self.shared)
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        // Dropping the router's senders disconnects every replica's
        // queue; reactors drain what was admitted, then exit. Clients
        // mid-submit hold transient Arc clones — the queues close when
        // the last one drops.
        *self.shared.router.write().unwrap() = None;
        *self.shared.write_txs.write().unwrap() = None;
        for h in self.reactor_threads.drain(..) {
            let _ = h.join();
        }
        for h in self.writer_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.collector.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

/// The per-shard writer loop: owns the shard's [`ShardUpdater`] (the
/// shard write lock — one writer per shard serializes its mutations),
/// opened lazily on the first job so read-only sessions never take the
/// index's read-write handle. Applies jobs in FIFO order, resolves
/// each ticket and books the session metrics.
///
/// With [`ServiceConfig::maintenance_blocks_per_tick`] nonzero the
/// writer doubles as the shard's reclamation driver: whenever its
/// queue goes idle for a millisecond — and between bursts of applied
/// writes — it runs one budgeted [`ShardUpdater::maintain`] tick. An
/// unproductive completed pass parks the idle trigger (the loop
/// returns to plain blocking receives) until the next applied write
/// dirties the shard again, so a quiescent shard costs nothing.
fn run_writer(shared: &SessionShared, s: usize, jobs: GatedReceiver<WriteJob>) {
    let shard = shared.topo.shard(s);
    let mut up: Option<ShardUpdater<'_>> = None;
    let mut open_failed = false;
    let maint_budget = shared.config.maintenance_blocks_per_tick;
    // Applied writes since the last maintenance tick; a tick every
    // WRITES_PER_TICK applied ops keeps reclamation advancing even
    // when the queue never drains.
    const WRITES_PER_TICK: usize = 8;
    let mut since_tick = 0usize;
    let mut parked = false;
    loop {
        let job = if let Some(u) = up.as_mut().filter(|_| maint_budget > 0 && !parked) {
            match jobs.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(job) => job,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    since_tick = 0;
                    parked = maintenance_tick(shared, s, u, maint_budget);
                    continue;
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match jobs.recv() {
                Ok(job) => job,
                Err(_) => break,
            }
        };
        if up.is_none() && !open_failed {
            // A panic here would strand every write ticket of this
            // shard; if the index file cannot be reopened read-write,
            // writes to this shard fail instead.
            match ShardUpdater::open(shard) {
                Ok(mut u) => {
                    for cache in shared.topo.shard_caches(s) {
                        u.mirror_cache(cache);
                    }
                    up = Some(u);
                }
                Err(e) => {
                    eprintln!("shard {s}: updater unavailable, failing writes: {e}");
                    open_failed = true;
                }
            }
        }
        // Service start *after* the lazy open: the one-time open cost
        // (RW reopen, reconcile, cache mirroring) is session setup, not
        // the first write's service time (end-to-end latency still
        // covers it — the caller really waited).
        let start = shared.now();
        let applied = match (&mut up, &job.kind) {
            (Some(u), WriteKind::Insert { point }) => match u.insert(point) {
                Ok(gid) => {
                    debug_assert_eq!(gid, job.global_id, "mint/updater id drift");
                    true
                }
                Err(_) => false,
            },
            (Some(u), WriteKind::Delete) => {
                // Guard the id before the updater touches it: a delete
                // of an id this shard never assigned (shed insert,
                // caller error) fails cleanly instead of panicking the
                // writer.
                shard.try_local_of(job.global_id).is_some() && u.delete(job.global_id).is_ok()
            }
            (None, _) => false,
        };
        let finish = shared.now();
        let (freed, inconsistent) = up.as_ref().map_or((0, 0), |u| {
            (u.last_blocks_freed(), u.last_chain_inconsistencies())
        });
        {
            let mut m = shared.metrics.lock().unwrap();
            if applied {
                m.writes_applied += 1;
                m.write_hist.record(finish - job.ref_time);
                m.write_service_hist.record(finish - start);
                m.write_wait_hist.record(start - job.enqueued);
            } else {
                m.writes_failed += 1;
            }
            m.blocks_reclaimed += freed;
            m.bytes_reclaimed += freed * BLOCK_SIZE as u64;
            m.chain_inconsistencies += inconsistent;
            m.last_event = m.last_event.max(finish);
        }
        let span_needed = !shared.tracer.disabled() || inconsistent > 0;
        if span_needed {
            let blocks = up.as_ref().map_or(0, |u| u.last_write_blocks());
            let span = TraceSpan {
                id: job.slot.id,
                kind: SpanKind::Write {
                    blocks_invalidated: blocks,
                },
                submitted: job.ref_time,
                net: job.net,
                routed: job.enqueued,
                shards: vec![ShardSpan {
                    shard: s,
                    replica: 0,
                    start,
                    finish,
                    n_io: blocks,
                }],
                resolved: finish,
            };
            if inconsistent > 0 {
                // A delete that found its victim missing from some
                // chains means the shard index was already damaged —
                // worth an operator's attention regardless of
                // sampling, so the span goes to the slow-query log
                // unconditionally, id and all.
                eprintln!(
                    "shard {s}: delete of global id {} missing from {inconsistent} chain(s) \
                     (ticket #{})",
                    job.global_id, job.slot.id
                );
                shared.tracer.force_slow(span.clone());
            }
            if !shared.tracer.disabled() {
                shared.tracer.observe(span);
            }
        }
        job.slot.resolve(WriteResult {
            status: OpStatus::Ok,
            applied,
            id: Some(job.global_id),
            overload: None,
            latency: finish - job.ref_time,
            service_latency: finish - start,
        });
        if applied {
            parked = false;
            since_tick += 1;
            if maint_budget > 0 && since_tick >= WRITES_PER_TICK {
                if let Some(u) = up.as_mut() {
                    since_tick = 0;
                    parked = maintenance_tick(shared, s, u, maint_budget);
                }
            }
        }
    }
}

/// Run one budgeted reclamation tick on a shard and book its yield
/// into the session counters. Returns true when the tick proved the
/// shard fully compacted (a completed, unproductive pass) — the caller
/// parks the idle trigger until the next applied write.
fn maintenance_tick(
    shared: &SessionShared,
    s: usize,
    up: &mut ShardUpdater<'_>,
    block_budget: usize,
) -> bool {
    match up.maintain(block_budget) {
        Ok(rep) => {
            let mut m = shared.metrics.lock().unwrap();
            m.blocks_reclaimed += rep.blocks_reclaimed;
            m.filter_bits_cleared += rep.filter_bits_cleared;
            m.bytes_reclaimed += rep.bytes_reclaimed;
            drop(m);
            rep.completed_pass && !rep.productive()
        }
        Err(e) => {
            // A failing device is not a reason to spin the idle
            // trigger: park until a write (which would surface the
            // same fault to its caller) re-arms maintenance.
            eprintln!("shard {s}: maintenance tick failed: {e}");
            true
        }
    }
}

/// The collector loop: merges shard partials into ticket resolutions
/// and runs the failover scan on `ReplicaDown`. Exits when every
/// reactor's sender is gone (session shutdown).
fn run_collector(shared: &SessionShared, msg_rx: Receiver<ReactorMsg>) {
    let num_shards = shared.topo.num_shards();
    while let Ok(msg) = msg_rx.recv() {
        match msg {
            ReactorMsg::Partial {
                qid,
                shard,
                replica,
                neighbors,
                n_io,
                start,
                finish,
            } => {
                {
                    let mut m = shared.metrics.lock().unwrap();
                    m.total_io += u64::from(n_io);
                }
                let entry = shared.registry.lock().unwrap().get(&qid).cloned();
                // A missing entry is a late partial of a resolved
                // (force-completed or failover-raced) ticket: drop it.
                let Some(e) = entry else { continue };
                {
                    let mut acc = e.acc.lock().unwrap();
                    if acc.finished || (acc.got[shard] as usize) >= quota(&e.masks, shard) {
                        // Failover duplicate: the dying replica
                        // completed a query we also re-dispatched.
                        continue;
                    }
                    acc.neighbors.extend(neighbors);
                    acc.start = acc.start.min(start);
                    acc.finish = acc.finish.max(finish);
                    acc.n_io += u64::from(n_io);
                    acc.got[shard] += 1;
                    if !shared.tracer.disabled() {
                        acc.spans.push(ShardSpan {
                            shard,
                            replica,
                            start,
                            finish,
                            n_io: u64::from(n_io),
                        });
                    }
                }
                try_finish(shared, &e, num_shards);
            }
            ReactorMsg::ReplicaDown { shard, replica } => {
                failover_scan(shared, shard, replica, num_shards);
            }
        }
    }
}

/// Resolve the ticket if every shard's quota is met. Every caller runs
/// after the query was dispatched (a partial arrived, or the failover
/// scan matched its routing bits), and all-or-nothing fan-out publishes
/// every shard's dispatch set before the first send — so an
/// undispatched query (all quotas 0) can never be finished through this
/// check. A quota of 0 on a *dispatched* query is legitimate: every
/// broadcast replica of that shard died and the shard contributes
/// nothing.
fn try_finish(shared: &SessionShared, e: &InFlight, num_shards: usize) -> bool {
    let (neighbors, latency, service_latency, finish, n_io, spans) = {
        let mut acc = e.acc.lock().unwrap();
        if acc.finished {
            return false;
        }
        for s in 0..num_shards {
            if (acc.got[s] as usize) < quota(&e.masks, s) {
                return false;
            }
        }
        acc.finished = true;
        let mut merged = std::mem::take(&mut acc.neighbors);
        merged.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        // Broadcast (and failover races) can deliver the same neighbor
        // from two replicas of one shard: keep the first of each id.
        // Shards never share ids, so single-route merges are untouched.
        let k = shared.config.k;
        let mut seen_ids: Vec<u32> = Vec::with_capacity(k);
        merged.retain(|&(id, _)| {
            if seen_ids.len() >= k || seen_ids.contains(&id) {
                false
            } else {
                seen_ids.push(id);
                true
            }
        });
        // A query whose every partial was abandoned never started.
        let start = if acc.start == f64::MAX {
            acc.finish
        } else {
            acc.start
        };
        (
            merged,
            acc.finish - e.ref_time,
            acc.finish - start,
            acc.finish,
            acc.n_io,
            std::mem::take(&mut acc.spans),
        )
    };
    shared.registry.lock().unwrap().remove(&e.qid);
    {
        let mut m = shared.metrics.lock().unwrap();
        m.completed_queries += 1;
        m.read_hist.record(latency);
        m.read_service_hist.record(service_latency);
        m.read_wait_hist
            .record((latency - service_latency).max(0.0));
        m.last_event = m.last_event.max(finish);
    }
    if !shared.tracer.disabled() {
        shared.tracer.observe(TraceSpan {
            id: e.qid,
            kind: SpanKind::Query,
            submitted: e.ref_time,
            net: e.net,
            routed: f64::from_bits(e.routed.load(Ordering::Acquire)),
            shards: spans,
            resolved: finish,
        });
    }
    e.slot.resolve(QueryResult {
        status: OpStatus::Ok,
        neighbors,
        overload: None,
        latency,
        service_latency,
        n_io,
    });
    true
}

/// A replica died mid-session: resolve every live ticket that was
/// dispatched to it. Single-route policies re-dispatch to a live
/// sibling (or, with none left, complete the query with that shard's
/// partial empty); broadcast simply drops the dead replica's bit from
/// the query's dispatch set — the surviving replicas already carry the
/// query, so its quota shrinks and the ticket resolves without waiting
/// for an answer that will never come.
fn failover_scan(shared: &SessionShared, shard: usize, replica: usize, num_shards: usize) {
    let entries: Vec<Arc<InFlight>> = shared.registry.lock().unwrap().values().cloned().collect();
    let router = shared.router.read().unwrap().clone();
    let broadcast = router
        .as_ref()
        .is_some_and(|r| r.policy() == RoutePolicy::Broadcast);
    for e in entries {
        {
            let acc = e.acc.lock().unwrap();
            if acc.finished || (acc.got[shard] as usize) >= quota(&e.masks, shard) {
                continue;
            }
        }
        if !is_routed_to(&e.masks, shard, replica) {
            continue;
        }
        if broadcast {
            // The dead replica's partial may or may not have been
            // delivered; either way the sibling replicas of the
            // broadcast carry identical answers, so shrinking the
            // quota by this bit never degrades the result.
            clear_routed_bit(&e.masks, shard, replica);
            if quota(&e.masks, shard) == 0 && e.acc.lock().unwrap().got[shard] == 0 {
                // Every broadcast replica of the shard died before
                // answering: the shard's contribution is lost.
                shared.router_stats.count_abandoned();
            }
            try_finish(shared, &e, num_shards);
        } else {
            let redispatched = router
                .as_ref()
                .and_then(|r| r.redispatch(e.qid, &e.point, &e.masks, shard, replica));
            if redispatched.is_none() {
                // No live sibling (or the session is draining): the
                // shard contributes nothing; the ticket resolves when
                // nothing else is outstanding.
                shared.router_stats.count_abandoned();
                let now = shared.now();
                {
                    let mut acc = e.acc.lock().unwrap();
                    acc.got[shard] = quota(&e.masks, shard) as u8;
                    acc.finish = acc.finish.max(now);
                }
                try_finish(shared, &e, num_shards);
            }
        }
    }
}

/// Peak queue depth over every read lane and write queue.
fn peak_queue_depth(shared: &SessionShared) -> usize {
    let read = shared
        .read_gates
        .iter()
        .flatten()
        .map(|g| g.stats().peak_depth)
        .max()
        .unwrap_or(0);
    let write = shared
        .write_gates
        .iter()
        .map(|g| g.stats().peak_depth)
        .max()
        .unwrap_or(0);
    read.max(write)
}

/// Fold the per-session cache-counter deltas of every replica cache
/// into `device`.
fn add_cache_deltas(shared: &SessionShared, device: &mut DeviceStats) {
    let mut i = 0;
    for s in 0..shared.topo.num_shards() {
        for rep in shared.topo.shard_replicas(s) {
            if let Some(c) = rep.cache() {
                let snap = &shared.cache_snap[i];
                device.cache_hits += c.hits() - snap.hits;
                device.cache_misses += c.misses() - snap.misses;
                device.cache_evictions += c.evictions() - snap.evictions;
                device.cache_invalidations += c.invalidations() - snap.invalidations;
                device.cache_stale_fills += c.stale_fills() - snap.stale_fills;
                device.cache_warmed += c.warmed() - snap.warmed;
                device.cache_admission_rejected += c.admission_rejected() - snap.admission_rejected;
                device.cache_table_hits += c.table_hits() - snap.table_hits;
                device.cache_table_misses += c.table_misses() - snap.table_misses;
                device.cache_bucket_hits += c.bucket_hits() - snap.bucket_hits;
                device.cache_bucket_misses += c.bucket_misses() - snap.bucket_misses;
                device.coalesced_reads += c.coalesced() - snap.coalesced;
            }
            i += 1;
        }
    }
}

/// Snapshot cache counters so reports show per-session deltas even when
/// a warm cache is reused across sessions. One snapshot per replica, in
/// `[shard][replica]` order flattened. Taken *before* start-time cache
/// warming, so the blocks a session warms at start appear in its own
/// `cache_warmed` delta.
fn cache_snapshots(topo: &Topology) -> Vec<CacheSnapshot> {
    (0..topo.num_shards())
        .flat_map(|s| {
            topo.shard_replicas(s).iter().map(|rep| match rep.cache() {
                Some(c) => CacheSnapshot {
                    hits: c.hits(),
                    misses: c.misses(),
                    evictions: c.evictions(),
                    invalidations: c.invalidations(),
                    stale_fills: c.stale_fills(),
                    warmed: c.warmed(),
                    admission_rejected: c.admission_rejected(),
                    table_hits: c.table_hits(),
                    table_misses: c.table_misses(),
                    bucket_hits: c.bucket_hits(),
                    bucket_misses: c.bucket_misses(),
                    coalesced: c.coalesced(),
                },
                None => CacheSnapshot::default(),
            })
        })
        .collect()
}

/// Aggregate the live per-replica device statistics: shared sim arrays
/// report whole-array totals from every handle, so those are merged
/// max-by-completed per shard; private devices are summed. Cache
/// deltas (including warmed blocks) are folded in.
fn aggregate_device(shared: &SessionShared) -> DeviceStats {
    let shared_device = matches!(shared.config.device, DeviceSpec::SimShared { .. });
    let mut out = DeviceStats::default();
    for per_shard in &shared.replica_cells {
        let mut best = DeviceStats::default();
        for cell in per_shard.iter() {
            let d = *cell.device.lock().unwrap();
            if shared_device {
                if d.completed >= best.completed {
                    best = d;
                }
            } else {
                out.completed += d.completed;
                out.bytes += d.bytes;
                out.latency_sum += d.latency_sum;
                out.busy_sum += d.busy_sum;
            }
        }
        if shared_device {
            out.completed += best.completed;
            out.bytes += best.bytes;
            out.latency_sum += best.latency_sum;
            out.busy_sum += best.busy_sum;
        }
    }
    add_cache_deltas(shared, &mut out);
    out
}

/// Field-wise saturating subtraction for device-stats deltas (per-batch
/// reports and [`ServiceReport::interval_since`]).
///
/// [`ServiceReport::interval_since`]: crate::service::ServiceReport::interval_since
pub(crate) fn device_sub(d: &mut DeviceStats, prev: &DeviceStats) {
    d.completed -= prev.completed.min(d.completed);
    d.bytes -= prev.bytes.min(d.bytes);
    d.latency_sum = (d.latency_sum - prev.latency_sum).max(0.0);
    d.busy_sum = (d.busy_sum - prev.busy_sum).max(0.0);
    d.cache_hits -= prev.cache_hits.min(d.cache_hits);
    d.cache_misses -= prev.cache_misses.min(d.cache_misses);
    d.cache_evictions -= prev.cache_evictions.min(d.cache_evictions);
    d.cache_invalidations -= prev.cache_invalidations.min(d.cache_invalidations);
    d.cache_stale_fills -= prev.cache_stale_fills.min(d.cache_stale_fills);
    d.cache_warmed -= prev.cache_warmed.min(d.cache_warmed);
    d.cache_admission_rejected -= prev
        .cache_admission_rejected
        .min(d.cache_admission_rejected);
    d.cache_table_hits -= prev.cache_table_hits.min(d.cache_table_hits);
    d.cache_table_misses -= prev.cache_table_misses.min(d.cache_table_misses);
    d.cache_bucket_hits -= prev.cache_bucket_hits.min(d.cache_bucket_hits);
    d.cache_bucket_misses -= prev.cache_bucket_misses.min(d.cache_bucket_misses);
    d.coalesced_reads -= prev.coalesced_reads.min(d.coalesced_reads);
    d.blocks_reclaimed -= prev.blocks_reclaimed.min(d.blocks_reclaimed);
    d.filter_bits_cleared -= prev.filter_bits_cleared.min(d.filter_bits_cleared);
    d.bytes_reclaimed -= prev.bytes_reclaimed.min(d.bytes_reclaimed);
    d.chain_inconsistencies -= prev.chain_inconsistencies.min(d.chain_inconsistencies);
}

/// Queries served per `[shard][replica]`, from the live reactor cells.
fn replica_load(shared: &SessionShared) -> Vec<Vec<u64>> {
    shared
        .replica_cells
        .iter()
        .map(|per_shard| {
            per_shard
                .iter()
                .map(|c| c.served.load(Ordering::Acquire))
                .collect()
        })
        .collect()
}

/// Assemble a [`ServiceReport`](crate::service::ServiceReport)
/// snapshot from the session's monotonic counters. Bounded: the
/// latency data is carried as histograms; the per-op vectors hold only
/// shape placeholders (see [`Session::metrics`]).
fn build_report(shared: &SessionShared) -> ServiceReport {
    let num_shards = shared.topo.num_shards();
    let replicas = shared.config.replicas_per_shard;
    let mut report = {
        let m = shared.metrics.lock().unwrap();
        ServiceReport {
            results: vec![Vec::new(); m.completed_queries + m.shed_queries],
            statuses: {
                let mut st = vec![OpStatus::Ok; m.completed_queries];
                st.extend(std::iter::repeat_n(OpStatus::Shed, m.shed_queries));
                st
            },
            latencies: Vec::new(),
            service_latencies: Vec::new(),
            write_latencies: Vec::new(),
            write_service_latencies: Vec::new(),
            completed_queries: m.completed_queries,
            writes_applied: m.writes_applied,
            read_hist: m.read_hist.clone(),
            read_service_hist: m.read_service_hist.clone(),
            read_wait_hist: m.read_wait_hist.clone(),
            write_hist: m.write_hist.clone(),
            write_service_hist: m.write_service_hist.clone(),
            write_wait_hist: m.write_wait_hist.clone(),
            writes_failed: m.writes_failed,
            shed_queries: m.shed_queries,
            shed_writes: m.shed_writes,
            retries: 0,
            failovers: 0,
            lost_partials: 0,
            peak_queue_depth: 0,
            duration: m.last_event,
            device: DeviceStats::default(),
            total_io: m.total_io,
            workers: num_shards * replicas * shared.config.workers_per_replica,
            shards: num_shards,
            replicas,
            replica_load: Vec::new(),
            slow_queries: Vec::new(),
            net: crate::net::NetCounters::default(),
        }
    };
    // Everything below reads locks/atomics other than the metrics
    // mutex; filled outside the lock scope above.
    report.failovers = shared.router_stats.failovers();
    report.lost_partials = shared.router_stats.abandoned();
    report.peak_queue_depth = peak_queue_depth(shared);
    report.device = aggregate_device(shared);
    {
        // Reclamation counters are writer-level: devices know nothing
        // of free lists, so the report fills them from the session
        // counters the writer threads book.
        let m = shared.metrics.lock().unwrap();
        report.device.blocks_reclaimed = m.blocks_reclaimed;
        report.device.filter_bits_cleared = m.filter_bits_cleared;
        report.device.bytes_reclaimed = m.bytes_reclaimed;
        report.device.chain_inconsistencies = m.chain_inconsistencies;
    }
    report.replica_load = replica_load(shared);
    report.slow_queries = shared.tracer.slow_queries();
    report
}

/// One shared simulated array per shard when the device spec asks for
/// it — shared across **all** of the shard's replicas (the shard's data
/// lives on one array; replicas add compute and cache, not spindles).
fn build_arrays(topo: &Topology, config: &ServiceConfig) -> Vec<Option<SharedSimArray>> {
    // One handle per replica: the replica's reactor owns it.
    let handles = config.replicas_per_shard;
    topo.shards()
        .shards()
        .iter()
        .map(|shard| match config.device {
            DeviceSpec::SimShared {
                profile,
                num_devices,
            } => {
                let sim = SimStorage::new(
                    profile,
                    num_devices,
                    Backing::open(&shard.path).expect("open shard index"),
                );
                Some(SharedSimArray::new(sim, handles))
            }
            _ => None,
        })
        .collect()
}

fn make_device(
    spec: &DeviceSpec,
    shard: &Shard,
    array: &Option<SharedSimArray>,
    handle: usize,
    cache: Option<&Arc<BlockCache>>,
    coalescing: bool,
) -> Box<dyn Device> {
    fn wrap<D: Device + 'static>(
        dev: D,
        cache: Option<&Arc<BlockCache>>,
        coalescing: bool,
    ) -> Box<dyn Device> {
        match cache {
            Some(cache) => {
                let mut dev = CachedDevice::new(dev, Arc::clone(cache), BLOCK_SIZE as u32);
                dev.set_coalescing(coalescing);
                Box::new(dev)
            }
            None => Box::new(dev),
        }
    }
    match *spec {
        DeviceSpec::File { io_workers } => wrap(
            FileDevice::open(&shard.path, io_workers.max(1)).expect("open shard index"),
            cache,
            coalescing,
        ),
        DeviceSpec::SimPerWorker {
            profile,
            num_devices,
        } => wrap(
            SimStorage::new(
                profile,
                num_devices,
                Backing::open(&shard.path).expect("open shard index"),
            ),
            cache,
            coalescing,
        ),
        DeviceSpec::SimShared { .. } => wrap(
            array.as_ref().expect("shared array built").handle(handle),
            cache,
            coalescing,
        ),
    }
}
