//! Serving topology: replica groups over the shard set.
//!
//! PRs 1–3 hard-wired one serving loop per shard. This module
//! generalizes that to **R replicas per shard**: every replica of shard
//! `s` serves queries against the *same* on-storage index and the same
//! locked row store (the [`Shard`] — its `RwLock`'d dataset and atomic
//! occupancy-filter bitmaps make the shared mutable state safe), but
//! owns an **independent** reactor (and its compute pool), DRAM block
//! cache and admission queue. Reads scale out by adding replicas; writes keep the single
//! writer per shard and publish to every replica for free — the index
//! and rows are shared, only the per-replica caches need the writer's
//! block invalidations (see [`crate::update::ShardUpdater`]).
//!
//! The topology also owns each replica's **health**: a replica can be
//! *fenced* ([`Topology::fence`]) — marked down so the router stops
//! selecting it — either by an operator/test (simulating a crash) or by
//! the serving layer itself when the replica's reactor (or one of its
//! compute tasks) panics.
//! The fencing protocol that makes this race-free lives with the
//! per-run dispatch state in [`crate::router`]; the topology just holds
//! the durable flag (a fenced replica stays fenced across serve calls
//! until [`Topology::unfence`]).
//!
//! Replica 0 of each shard reuses the cache the [`ShardSet`] built (so
//! a `Topology` with `replicas_per_shard == 1` is exactly the PR-3
//! service); replicas 1..R get fresh private caches of identical shape
//! ([`BlockCache::new_like`]). Private caches are the point: replicas
//! model independent serving processes (possibly on different machines
//! or NUMA domains), and a query's cache locality depends on which
//! replica the router picks.

use crate::shard::{Shard, ShardSet};
use e2lsh_storage::device::cached::BlockCache;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Health and per-replica resources of one replica.
pub struct Replica {
    /// The replica's private DRAM block cache (`None` when the shard
    /// set was built uncached).
    cache: Option<Arc<BlockCache>>,
    /// True when the replica is fenced: the router must not select it
    /// and its reactor abandons its queue (see `crate::router` for the
    /// handshake).
    down: AtomicBool,
    /// Times this replica has been fenced (diagnostics).
    fences: AtomicU64,
}

impl Replica {
    /// The replica's private cache.
    pub fn cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref()
    }

    /// True when the replica is fenced.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Fence this replica (idempotent; returns whether the call changed
    /// the state). All fences — operator calls through
    /// [`Topology::fence`] and a panicking reactor fencing its own
    /// replica — go through here, so the diagnostics counter counts
    /// every one.
    pub(crate) fn fence(&self) -> bool {
        let changed = !self.down.swap(true, Ordering::SeqCst);
        if changed {
            self.fences.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    /// Times this replica has been fenced.
    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }
}

/// The serving topology: every shard of a [`ShardSet`], each backed by
/// `replicas_per_shard` replicas.
pub struct Topology {
    shards: ShardSet,
    /// `[shard][replica]` health + resources.
    replicas: Vec<Vec<Replica>>,
    replicas_per_shard: usize,
}

impl Topology {
    /// Back every shard of `shards` with `replicas_per_shard` replicas
    /// (clamped to at least 1). Replica 0 adopts the shard's existing
    /// cache; higher replicas get fresh private caches of the same
    /// capacity and lock striping.
    pub fn new(shards: ShardSet, replicas_per_shard: usize) -> Self {
        let r = replicas_per_shard.max(1);
        let replicas = shards
            .shards()
            .iter()
            .map(|shard| {
                (0..r)
                    .map(|ri| Replica {
                        cache: match (&shard.cache, ri) {
                            (Some(c), 0) => Some(Arc::clone(c)),
                            (Some(c), _) => Some(Arc::new(c.new_like())),
                            (None, _) => None,
                        },
                        down: AtomicBool::new(false),
                        fences: AtomicU64::new(0),
                    })
                    .collect()
            })
            .collect();
        Self {
            shards,
            replicas,
            replicas_per_shard: r,
        }
    }

    /// The underlying shard set.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// Shard `s` (shared by all of its replicas).
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards.shards()[s]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.num_shards()
    }

    /// Replicas backing each shard.
    pub fn replicas_per_shard(&self) -> usize {
        self.replicas_per_shard
    }

    /// Replica `r` of shard `s`.
    pub fn replica(&self, s: usize, r: usize) -> &Replica {
        &self.replicas[s][r]
    }

    /// The replicas of shard `s`.
    pub fn shard_replicas(&self, s: usize) -> &[Replica] {
        &self.replicas[s]
    }

    /// All replica caches of shard `s` (the writer invalidates
    /// rewritten blocks in every one of them).
    pub fn shard_caches(&self, s: usize) -> Vec<Arc<BlockCache>> {
        self.replicas[s]
            .iter()
            .filter_map(|r| r.cache.clone())
            .collect()
    }

    /// Fence replica `r` of shard `s`: the router stops selecting it,
    /// its reactor abandons its queue at the next loop iteration, and
    /// the per-run failover scan re-dispatches its outstanding queries
    /// to a live sibling. Idempotent. Returns whether the call changed
    /// the state.
    ///
    /// Fencing the *last* live replica of a shard leaves the shard
    /// unreachable for reads: new queries are shed and outstanding ones
    /// complete with that shard's partial empty (the run still
    /// terminates). Writes are unaffected — the per-shard writer is not
    /// a replica.
    pub fn fence(&self, s: usize, r: usize) -> bool {
        self.replicas[s][r].fence()
    }

    /// Clear a replica's fence so future serve calls and sessions use
    /// it again (reactors are spawned per session, so recovery needs no
    /// handshake; a session that already fenced the replica's reactor
    /// picks it back up at the next session start).
    pub fn unfence(&self, s: usize, r: usize) {
        self.replicas[s][r].down.store(false, Ordering::SeqCst);
    }

    /// Warm replica `r`'s block cache from the warmest sibling of shard
    /// `s`: copy up to `max_blocks` of the sibling's most-recently-used
    /// blocks ([`BlockCache::warm_from`]) so the replica starts serving
    /// from a populated cache instead of paying the cold-start misses.
    /// The donor is the sibling (fenced or not — a fenced replica's
    /// cache is still invalidation-maintained) with the most cached
    /// blocks. Returns the number of blocks copied (0 when the shard is
    /// uncached, `max_blocks` is 0, or no sibling holds anything).
    ///
    /// Call while the shard has no active writer (see
    /// [`BlockCache::warm_from`] for the race this avoids); the serving
    /// layer warms at session start, before writers accept work.
    pub fn warm_replica(&self, s: usize, r: usize, max_blocks: usize) -> usize {
        if max_blocks == 0 {
            return 0;
        }
        let Some(target) = self.replicas[s][r].cache() else {
            return 0;
        };
        let donor = self.replicas[s]
            .iter()
            .enumerate()
            .filter(|&(ri, _)| ri != r)
            .filter_map(|(_, rep)| rep.cache())
            .max_by_key(|c| c.len());
        match donor {
            Some(donor) => target.warm_from(donor, max_blocks),
            None => 0,
        }
    }

    /// [`Topology::unfence`] + [`Topology::warm_replica`]: bring a
    /// fenced replica back and pre-fill its cache from the warmest live
    /// sibling so its first queries do not pay the full cold-start miss
    /// cost. Returns the number of blocks copied.
    pub fn unfence_and_warm(&self, s: usize, r: usize, max_blocks: usize) -> usize {
        self.unfence(s, r);
        self.warm_replica(s, r, max_blocks)
    }

    /// True when replica `r` of shard `s` is fenced.
    pub fn is_down(&self, s: usize, r: usize) -> bool {
        self.replicas[s][r].is_down()
    }

    /// Live (un-fenced) replica indices of shard `s`.
    pub fn live_replicas(&self, s: usize) -> Vec<usize> {
        (0..self.replicas_per_shard)
            .filter(|&r| !self.is_down(s, r))
            .collect()
    }

    /// Fence events across all replicas (diagnostics).
    pub fn total_fences(&self) -> u64 {
        self.replicas
            .iter()
            .flatten()
            .map(|r| r.fences.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardBuildConfig;
    use e2lsh_core::dataset::Dataset;
    use e2lsh_core::params::E2lshParams;

    fn tiny_shards(cache_blocks: usize, tag: &str) -> ShardSet {
        let mut data = Dataset::with_capacity(4, 64);
        for i in 0..64 {
            data.push(&[i as f32, 0.0, 1.0, -1.0]);
        }
        ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: 2,
                seed: 11,
                dir: std::env::temp_dir()
                    .join(format!("e2lsh-topology-{}-{tag}", std::process::id())),
                cache_blocks,
                ..Default::default()
            },
            |local| {
                E2lshParams::derive(
                    local.len(),
                    2.0,
                    4.0,
                    1.0,
                    local.max_abs_coord(),
                    local.dim(),
                )
            },
        )
        .expect("build")
    }

    #[test]
    fn replicas_share_shard_but_own_caches() {
        let shards = tiny_shards(128, "caches");
        let topo = Topology::new(shards, 3);
        assert_eq!(topo.replicas_per_shard(), 3);
        for s in 0..topo.num_shards() {
            let caches = topo.shard_caches(s);
            assert_eq!(caches.len(), 3);
            // Replica 0 adopts the shard cache; siblings are private
            // but identically shaped.
            assert!(Arc::ptr_eq(
                &caches[0],
                topo.shard(s).cache.as_ref().unwrap()
            ));
            assert!(!Arc::ptr_eq(&caches[0], &caches[1]));
            assert_eq!(caches[1].capacity(), caches[0].capacity());
            assert_eq!(caches[1].lock_shards(), caches[0].lock_shards());
        }
        topo.shards().cleanup();
    }

    #[test]
    fn uncached_shards_yield_uncached_replicas() {
        let shards = tiny_shards(0, "nocache");
        let topo = Topology::new(shards, 2);
        assert!(topo.shard_caches(0).is_empty());
        assert!(topo.replica(0, 1).cache().is_none());
        topo.shards().cleanup();
    }

    #[test]
    fn warm_replica_copies_from_warmest_sibling() {
        let shards = tiny_shards(128, "warm");
        let topo = Topology::new(shards, 3);
        // Heat replica 0's cache (the shard cache) by hand.
        let donor = topo.replica(0, 0).cache().unwrap();
        for k in 0..20u64 {
            donor.insert(k, std::sync::Arc::from([k as u8].as_slice()));
        }
        let copied = topo.warm_replica(0, 1, 8);
        assert_eq!(copied, 8);
        let warmed = topo.replica(0, 1).cache().unwrap();
        assert_eq!(warmed.len(), 8);
        assert_eq!(warmed.warmed(), 8);
        // Budget 0 and uncached shards are no-ops.
        assert_eq!(topo.warm_replica(0, 2, 0), 0);
        // unfence_and_warm clears the fence and warms in one call.
        topo.fence(0, 2);
        let copied = topo.unfence_and_warm(0, 2, 4);
        assert!(!topo.is_down(0, 2));
        assert_eq!(copied, 4);
        topo.shards().cleanup();

        let uncached = Topology::new(tiny_shards(0, "warmless"), 2);
        assert_eq!(uncached.warm_replica(0, 1, 8), 0);
        uncached.shards().cleanup();
    }

    #[test]
    fn fencing_is_idempotent_and_reversible() {
        let shards = tiny_shards(0, "fence");
        let topo = Topology::new(shards, 2);
        assert_eq!(topo.live_replicas(0), vec![0, 1]);
        assert!(topo.fence(0, 1));
        assert!(!topo.fence(0, 1), "second fence is a no-op");
        assert!(topo.is_down(0, 1));
        assert_eq!(topo.live_replicas(0), vec![0]);
        assert_eq!(topo.live_replicas(1), vec![0, 1], "other shard untouched");
        assert_eq!(topo.total_fences(), 1);
        topo.unfence(0, 1);
        assert_eq!(topo.live_replicas(0), vec![0, 1]);
        topo.shards().cleanup();
    }
}
