//! Bounded admission queues with explicit load shedding.
//!
//! PRs 1–2 fed each shard from an unbounded channel: an open-loop
//! arrival rate above shard capacity grew the queue (and p99) without
//! bound instead of failing fast. This module is the admission
//! discipline that replaces them: every per-shard queue is a
//! [`GatedSender`]/[`GatedReceiver`] pair around the channel, gated by
//! an [`AdmissionBudget`] on **queue depth** (ops sent but not yet
//! picked up by a reactor) and **queued payload bytes**. A send that
//! would exceed either budget is rejected with a typed [`Overload`]
//! error — the op is *shed*, the caller reports it per-request, and the
//! queue keeps its bound.
//!
//! Shedding happens at the sender (the service dispatcher), so reactors
//! never see shed ops and FIFO order within a shard is untouched: the
//! channel delivers admitted ops in send order. The gate also tracks
//! the high-water queue depth and a shed counter, which surface in
//! `ServiceReport` so saturation benches can report goodput, shed rate
//! and peak depth together.
//!
//! Two disciplines ride on one gate: **queries shed**
//! ([`GatedSender::try_send`] / [`GatedSender::reserve`] — a rejected
//! query is a complete, reportable outcome), while **writes
//! backpressure** ([`GatedSender::send_blocking`] — the mixed op
//! stream's id arithmetic cannot survive a dropped write, so a full
//! write queue stalls the dispatcher instead; memory stays bounded
//! either way). The two classes draw from **separate budgets**
//! ([`AdmissionControl`]: a read and a write [`AdmissionBudget`] per
//! shard), so a write burst can never shed reads. A shed op's
//! [`Overload`] error carries a [`Overload::retry_after`] backoff hint
//! derived from the gate's observed drain rate;
//! [`crate::loadgen::Load::ClosedBackoff`] models a client that honors
//! it.
//!
//! Invariants (model-checked in `crates/service/tests/batch_dedup.rs`):
//!
//! * depth ≤ `max_depth` and queued bytes ≤ `max_bytes` at all times;
//! * an op is shed **iff** admitting it would break a budget;
//! * admitted ops pop in FIFO order;
//! * `peak_depth` is the exact high-water mark of admitted depth.

use crossbeam::channel::{unbounded, Receiver, RecvError, RecvTimeoutError, TryRecvError};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed load-shedding error: the op was rejected at admission because
/// the shard's queue budget was exhausted. The fields snapshot the
/// queue at rejection time (racy under concurrent pops — diagnostics,
/// not invariants).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Overload {
    /// Shard whose budget rejected the op.
    pub shard: usize,
    /// Queue depth observed at rejection.
    pub depth: usize,
    /// Queued payload bytes observed at rejection.
    pub queued_bytes: usize,
    /// Client backoff hint in seconds: the estimated time until the
    /// queue has drained enough to admit an op like this one, derived
    /// from the gate's observed drain rate (pops per second since the
    /// gate was created). A well-behaved client retries no earlier;
    /// [`crate::loadgen::Load::ClosedBackoff`] honors it. Clamped to
    /// [`Overload::MIN_RETRY_AFTER`]..[`Overload::MAX_RETRY_AFTER`]
    /// (the fallback before any pop has been observed is the maximum).
    /// Exception: a shut-down session sheds with `f64::INFINITY` —
    /// there is nothing left to retry against (see
    /// [`CLIENT_THROTTLE_SHARD`](crate::session::CLIENT_THROTTLE_SHARD)).
    pub retry_after: f64,
}

impl Overload {
    /// Floor of the [`Overload::retry_after`] hint (an instantly
    /// retrying client would just re-shed).
    pub const MIN_RETRY_AFTER: f64 = 50e-6;
    /// Ceiling of the hint (also the cold-start fallback while the
    /// gate has not observed a single pop yet).
    pub const MAX_RETRY_AFTER: f64 = 50e-3;
}

impl fmt::Display for Overload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} overloaded: {} ops / {} bytes queued (retry after {:.1} ms)",
            self.shard,
            self.depth,
            self.queued_bytes,
            self.retry_after * 1e3
        )
    }
}

impl std::error::Error for Overload {}

/// Per-shard admission budget. `usize::MAX` disables a limit; the
/// default is fully unbounded (the PR-1/PR-2 behaviour: nothing is ever
/// shed, queues grow with offered load).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionBudget {
    /// Maximum ops queued per shard (sent, not yet picked up by a
    /// reactor or writer).
    pub max_depth: usize,
    /// Maximum queued payload bytes per shard (sum of the per-op cost
    /// the dispatcher charges: the query/insert point bytes, or the id
    /// bytes of a delete).
    pub max_bytes: usize,
}

impl AdmissionBudget {
    /// No limits: nothing is ever shed.
    pub const UNBOUNDED: Self = Self {
        max_depth: usize::MAX,
        max_bytes: usize::MAX,
    };

    /// Bound queue depth only.
    pub fn depth(max_depth: usize) -> Self {
        Self {
            max_depth,
            max_bytes: usize::MAX,
        }
    }

    /// True when at least one limit binds.
    pub fn is_bounded(&self) -> bool {
        self.max_depth != usize::MAX || self.max_bytes != usize::MAX
    }
}

impl Default for AdmissionBudget {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

/// Per-shard admission discipline split by op class: **reads and writes
/// draw from separate budgets**, so a write burst that fills the write
/// queue can never cause read sheds (and vice versa). PR 3 applied one
/// budget value to both queues; the queues were already separate, but a
/// single knob could not express "generous reads, tight writes" — the
/// shape a read-serving tier with a trickle of maintenance writes
/// wants.
///
/// Construct with [`AdmissionControl::symmetric`] (both classes share
/// one budget value, the PR-3 behaviour), [`AdmissionControl::depth`]
/// (symmetric depth-only bound), or build the struct directly for
/// asymmetric budgets. `From<AdmissionBudget>` converts symmetrically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AdmissionControl {
    /// Budget of each shard's query queue (overflow **sheds** with
    /// [`Overload`]).
    pub read: AdmissionBudget,
    /// Budget of each shard's write queue (overflow **backpressures**
    /// the dispatcher — see [`GatedSender::send_blocking`]).
    pub write: AdmissionBudget,
}

impl AdmissionControl {
    /// No limits on either class.
    pub const UNBOUNDED: Self = Self {
        read: AdmissionBudget::UNBOUNDED,
        write: AdmissionBudget::UNBOUNDED,
    };

    /// One budget value for both classes (each queue still gets its own
    /// gate — the classes never contend for budget).
    pub fn symmetric(budget: AdmissionBudget) -> Self {
        Self {
            read: budget,
            write: budget,
        }
    }

    /// Symmetric depth-only bound.
    pub fn depth(max_depth: usize) -> Self {
        Self::symmetric(AdmissionBudget::depth(max_depth))
    }

    /// True when at least one limit binds on either class.
    pub fn is_bounded(&self) -> bool {
        self.read.is_bounded() || self.write.is_bounded()
    }
}

impl From<AdmissionBudget> for AdmissionControl {
    fn from(budget: AdmissionBudget) -> Self {
        Self::symmetric(budget)
    }
}

/// Counters one gate accumulated over its lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateStats {
    /// High-water mark of admitted queue depth.
    pub peak_depth: usize,
    /// Ops rejected with [`Overload`].
    pub shed: u64,
}

/// Shared state of one shard's gate.
struct Gate {
    depth: AtomicUsize,
    bytes: AtomicUsize,
    peak_depth: AtomicUsize,
    shed: AtomicU64,
    /// Ops popped by receivers over the gate's lifetime — the drain
    /// counter behind the [`Overload::retry_after`] hint.
    popped: AtomicU64,
    /// When the gate was created (drain-rate reference point).
    started: Instant,
    budget: AdmissionBudget,
    shard: usize,
}

impl Gate {
    /// Backoff hint for an op rejected at `depth`: how long until the
    /// queue, draining at its observed lifetime rate, frees the slots
    /// this op needs. Conservative cold-start fallback (no pops
    /// observed yet): the maximum hint.
    fn retry_after(&self, depth: usize) -> f64 {
        let popped = self.popped.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        if popped == 0 || elapsed <= 0.0 {
            return Overload::MAX_RETRY_AFTER;
        }
        let drain_rate = popped as f64 / elapsed; // ops per second
        let slots_needed = (depth + 1).saturating_sub(self.budget.max_depth).max(1);
        (slots_needed as f64 / drain_rate)
            .clamp(Overload::MIN_RETRY_AFTER, Overload::MAX_RETRY_AFTER)
    }

    /// Reserve one op of `cost` bytes; fails (and undoes the tentative
    /// reservation) when a budget would be exceeded. `count_shed`
    /// distinguishes a real shed from a backpressure probe that will
    /// retry.
    fn reserve(&self, cost: usize, count_shed: bool) -> Result<(), Overload> {
        let depth = self.depth.fetch_add(1, Ordering::AcqRel) + 1;
        let bytes = self.bytes.fetch_add(cost, Ordering::AcqRel) + cost;
        if depth > self.budget.max_depth || bytes > self.budget.max_bytes {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.bytes.fetch_sub(cost, Ordering::AcqRel);
            if count_shed {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            return Err(Overload {
                shard: self.shard,
                depth: depth - 1,
                queued_bytes: bytes - cost,
                retry_after: self.retry_after(depth - 1),
            });
        }
        // `peak_depth` is bumped at *send* time, not here: a fan-out
        // reservation can still be rolled back, and a rolled-back op
        // was never admitted.
        Ok(())
    }

    /// Admit one op regardless of budgets, but only into an **empty**
    /// queue — the escape hatch for an op whose cost exceeds the whole
    /// byte budget (or any op under a zero depth bound), which could
    /// otherwise never be admitted at all. The queue holds at most
    /// this one oversize op, so memory stays bounded.
    fn force_reserve_when_empty(&self, cost: usize) -> bool {
        if self
            .depth
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.bytes.fetch_add(cost, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    fn unreserve(&self, cost: usize) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
        self.bytes.fetch_sub(cost, Ordering::AcqRel);
    }

    /// A receiver popped an op: release its budget and count the drain
    /// (fan-out rollbacks go through [`Gate::unreserve`] instead — a
    /// rolled-back reservation was never queued, so it must not inflate
    /// the drain rate).
    fn release_popped(&self, cost: usize) {
        self.unreserve(cost);
        self.popped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sending half of a bounded shard queue; cloneable.
pub struct GatedSender<T> {
    tx: crossbeam::channel::Sender<(T, usize)>,
    gate: Arc<Gate>,
}

impl<T> Clone for GatedSender<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            gate: Arc::clone(&self.gate),
        }
    }
}

/// Receiving half of a bounded shard queue; cloneable, though since the
/// reactor each replica's queue has exactly one receiver. A successful
/// receive releases the op's budget — depth counts ops *waiting*, not
/// ops in service (in-service work is already bounded by the reactor's
/// slot count).
pub struct GatedReceiver<T> {
    rx: Receiver<(T, usize)>,
    gate: Arc<Gate>,
}

impl<T> Clone for GatedReceiver<T> {
    fn clone(&self) -> Self {
        Self {
            rx: self.rx.clone(),
            gate: Arc::clone(&self.gate),
        }
    }
}

/// Create a bounded admission queue for `shard` under `budget`.
pub fn gated<T>(shard: usize, budget: AdmissionBudget) -> (GatedSender<T>, GatedReceiver<T>) {
    let gate = Arc::new(Gate {
        depth: AtomicUsize::new(0),
        bytes: AtomicUsize::new(0),
        peak_depth: AtomicUsize::new(0),
        shed: AtomicU64::new(0),
        popped: AtomicU64::new(0),
        started: Instant::now(),
        budget,
        shard,
    });
    let (tx, rx) = unbounded();
    (
        GatedSender {
            tx,
            gate: Arc::clone(&gate),
        },
        GatedReceiver { rx, gate },
    )
}

impl<T> GatedSender<T> {
    /// Admit one op of `cost` payload bytes, or shed it with
    /// [`Overload`]. Panics if every receiver is gone (reactors outlive
    /// the dispatcher by construction).
    pub fn try_send(&self, item: T, cost: usize) -> Result<(), Overload> {
        self.reserve(cost)?;
        self.send_reserved(item, cost);
        Ok(())
    }

    /// Reserve budget without sending — the all-or-nothing fan-out
    /// primitive: a query must be admitted by *every* shard or by none
    /// (a partial fan-out would leave its merge accumulator waiting
    /// forever). Reserve on each shard in order; on the first
    /// rejection, [`GatedSender::unreserve`] the earlier shards and
    /// shed the query.
    pub fn reserve(&self, cost: usize) -> Result<(), Overload> {
        self.gate.reserve(cost, true)
    }

    /// **Backpressure** send: block (sleeping briefly between probes)
    /// until the op fits the budget, then enqueue it. For ops that can
    /// be *delayed* but never *dropped* — the write path: the mixed op
    /// stream assigns insert ids by stream position and deletes
    /// reference ids inserted earlier, so shedding one write would
    /// desynchronize the dispatcher's arithmetic id assignment from
    /// the shard updater's positional one for every later write on the
    /// shard. Queue memory stays bounded; the *dispatcher* stalls
    /// instead (open-loop latencies still count the stall — they are
    /// measured from the scheduled arrival). Does not count as a shed.
    ///
    /// An op that could never fit even an empty queue (cost above the
    /// whole byte budget, or a zero depth bound) waits for the queue to
    /// drain and is then admitted *alone* as a one-op overrun — blocked
    /// forever would be the unbounded-queue hang wearing a new hat.
    pub fn send_blocking(&self, item: T, cost: usize) {
        let never_fits = cost > self.gate.budget.max_bytes || self.gate.budget.max_depth == 0;
        loop {
            let admitted = if never_fits {
                self.gate.force_reserve_when_empty(cost)
            } else {
                self.gate.reserve(cost, false).is_ok()
            };
            if admitted {
                self.send_reserved(item, cost);
                return;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    /// Reserve like [`GatedSender::reserve`] but without counting a
    /// shed on failure — for retrying callers (failover re-dispatch)
    /// whose rejection is a backpressure probe, not an outcome.
    pub(crate) fn reserve_uncounted(&self, cost: usize) -> Result<(), Overload> {
        self.gate.reserve(cost, false)
    }

    /// Undo a [`GatedSender::reserve`] that will not be sent.
    pub fn unreserve(&self, cost: usize) {
        self.gate.unreserve(cost);
    }

    /// Send an op whose budget was already reserved. Books the peak
    /// queue depth here — at this point the reservation is committed
    /// (never rolled back), so `peak_depth` counts exactly the ops
    /// that were admitted.
    pub fn send_reserved(&self, item: T, cost: usize) {
        // Sample before the send: the current depth still includes this
        // op's reservation, and a receiver cannot pop it earlier.
        self.gate
            .peak_depth
            .fetch_max(self.gate.depth.load(Ordering::Acquire), Ordering::AcqRel);
        self.tx.send((item, cost)).expect("receivers alive");
    }

    /// Current queue depth (racy; diagnostics only).
    pub fn depth(&self) -> usize {
        self.gate.depth.load(Ordering::Acquire)
    }

    /// Lifetime counters of this queue's gate.
    pub fn stats(&self) -> GateStats {
        GateStats {
            peak_depth: self.gate.peak_depth.load(Ordering::Acquire),
            shed: self.gate.shed.load(Ordering::Relaxed),
        }
    }

    /// A statistics-only view of this queue's gate, detached from the
    /// channel: holding one keeps the counters readable without keeping
    /// the queue connected (a live `GatedSender` clone would), so a
    /// session can report peak depths after shutdown closed its queues.
    pub fn stats_handle(&self) -> GateHandle {
        GateHandle {
            gate: Arc::clone(&self.gate),
        }
    }
}

/// Statistics-only handle onto a gate (see
/// [`GatedSender::stats_handle`]). Cannot send; does not keep the
/// queue's channel alive.
#[derive(Clone)]
pub struct GateHandle {
    gate: Arc<Gate>,
}

impl GateHandle {
    /// Current queue depth (racy; diagnostics only).
    pub fn depth(&self) -> usize {
        self.gate.depth.load(Ordering::Acquire)
    }

    /// Lifetime counters of the gate.
    pub fn stats(&self) -> GateStats {
        GateStats {
            peak_depth: self.gate.peak_depth.load(Ordering::Acquire),
            shed: self.gate.shed.load(Ordering::Relaxed),
        }
    }
}

impl<T> GatedReceiver<T> {
    /// Non-blocking receive; releases the op's budget on success.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map(|(item, cost)| {
            self.gate.release_popped(cost);
            item
        })
    }

    /// Blocking receive; releases the op's budget on success.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map(|(item, cost)| {
            self.gate.release_popped(cost);
            item
        })
    }

    /// Timed receive; releases the op's budget on success.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx.recv_timeout(timeout).map(|(item, cost)| {
            self.gate.release_popped(cost);
            item
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_budget_sheds_and_recovers() {
        let (tx, rx) = gated::<u32>(3, AdmissionBudget::depth(2));
        tx.try_send(1, 8).unwrap();
        tx.try_send(2, 8).unwrap();
        let err = tx.try_send(3, 8).unwrap_err();
        assert_eq!(err.shard, 3);
        assert_eq!(err.depth, 2);
        assert_eq!(tx.depth(), 2);
        assert_eq!(rx.try_recv(), Ok(1)); // FIFO + budget release
        tx.try_send(4, 8).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(4));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        let s = tx.stats();
        assert_eq!(s.peak_depth, 2);
        assert_eq!(s.shed, 1);
    }

    #[test]
    fn byte_budget_sheds_independently_of_depth() {
        let (tx, rx) = gated::<u8>(
            0,
            AdmissionBudget {
                max_depth: usize::MAX,
                max_bytes: 100,
            },
        );
        tx.try_send(0, 60).unwrap();
        tx.try_send(1, 40).unwrap();
        assert!(tx.try_send(2, 1).is_err(), "101 bytes exceeds the budget");
        rx.try_recv().unwrap();
        tx.try_send(3, 60).unwrap();
    }

    #[test]
    fn reserve_unreserve_roundtrip() {
        let (tx, _rx) = gated::<u8>(0, AdmissionBudget::depth(1));
        tx.reserve(4).unwrap();
        assert!(tx.reserve(4).is_err());
        tx.unreserve(4);
        tx.reserve(4).unwrap();
        assert_eq!(tx.depth(), 1);
    }

    #[test]
    fn rolled_back_reservation_never_counts_toward_peak() {
        let (tx, _rx) = gated::<u8>(0, AdmissionBudget::depth(4));
        tx.reserve(8).unwrap();
        tx.unreserve(8); // fan-out rollback: the op was never admitted
        assert_eq!(tx.stats().peak_depth, 0);
        tx.try_send(1, 8).unwrap();
        assert_eq!(tx.stats().peak_depth, 1);
    }

    #[test]
    fn oversize_op_is_admitted_alone_not_hung() {
        // cost > max_bytes can never fit a conforming queue; it must be
        // admitted alone once the queue is empty instead of spinning
        // forever.
        let (tx, rx) = gated::<u8>(
            0,
            AdmissionBudget {
                max_depth: usize::MAX,
                max_bytes: 4,
            },
        );
        tx.send_blocking(1, 100); // empty queue: forced through
        assert_eq!(tx.depth(), 1);
        assert!(
            tx.try_send(2, 1).is_err(),
            "the overrun saturates the byte budget"
        );
        assert_eq!(rx.try_recv(), Ok(1)); // budget fully released
        tx.try_send(3, 4).unwrap();
        // Zero depth bound: same escape hatch.
        let (tx0, rx0) = gated::<u8>(1, AdmissionBudget::depth(0));
        tx0.send_blocking(9, 1);
        assert_eq!(rx0.try_recv(), Ok(9));
    }

    #[test]
    fn retry_after_hint_is_sane() {
        let (tx, rx) = gated::<u32>(0, AdmissionBudget::depth(1));
        tx.try_send(1, 8).unwrap();
        // Cold gate: no pop observed yet — conservative maximum hint.
        let cold = tx.try_send(2, 8).unwrap_err();
        assert_eq!(cold.retry_after, Overload::MAX_RETRY_AFTER);
        // After a pop the hint derives from the observed drain rate and
        // stays within the clamp.
        rx.try_recv().unwrap();
        tx.try_send(3, 8).unwrap();
        let warm = tx.try_send(4, 8).unwrap_err();
        assert!(warm.retry_after >= Overload::MIN_RETRY_AFTER);
        assert!(warm.retry_after <= Overload::MAX_RETRY_AFTER);
    }

    #[test]
    fn admission_control_splits_classes() {
        let ctl = AdmissionControl {
            read: AdmissionBudget::depth(64),
            write: AdmissionBudget::depth(2),
        };
        assert!(ctl.is_bounded());
        // Independent gates: saturating the write queue never spends
        // read budget.
        let (read_tx, _read_rx) = gated::<u32>(0, ctl.read);
        let (write_tx, _write_rx) = gated::<u32>(0, ctl.write);
        write_tx.try_send(0, 8).unwrap();
        write_tx.try_send(1, 8).unwrap();
        assert!(write_tx.try_send(2, 8).is_err(), "write budget binds");
        for i in 0..64 {
            read_tx.try_send(i, 8).unwrap();
        }
        assert!(read_tx.try_send(64, 8).is_err(), "read budget binds at 64");
        // Conversions and shorthands.
        let sym: AdmissionControl = AdmissionBudget::depth(7).into();
        assert_eq!(sym, AdmissionControl::depth(7));
        assert!(!AdmissionControl::UNBOUNDED.is_bounded());
        assert_eq!(AdmissionControl::default(), AdmissionControl::UNBOUNDED);
    }

    #[test]
    fn unbounded_never_sheds() {
        let (tx, _rx) = gated::<usize>(0, AdmissionBudget::UNBOUNDED);
        for i in 0..10_000 {
            tx.try_send(i, 1 << 20).unwrap();
        }
        assert_eq!(tx.stats().shed, 0);
        assert_eq!(tx.stats().peak_depth, 10_000);
    }
}
