//! Service-level churn: background maintenance driven by the per-shard
//! writer threads, and the id-space-exhaustion failure path, exercised
//! through the session API.
//!
//! What is checked (seeded; `E2LSH_TEST_SEED=…` reproduces locally):
//!
//! 1. **id-space exhaustion is a clean failure** — inserts into a shard
//!    whose entry codec has no ids left resolve `applied == false`
//!    (status `Ok`, never `Shed`, no panic, no stranded writer
//!    thread), the failures are counted, and the session keeps serving
//!    queries and deletes afterwards;
//! 2. **maintenance reclaims through the session** — with
//!    [`ServiceConfig::maintenance_blocks_per_tick`] set, a
//!    delete-heavy workload makes the writer threads' idle ticks free
//!    blocks and clear filter bits, the counters surface in
//!    [`ServiceReport::device`] (`blocks_reclaimed`,
//!    `filter_bits_cleared`, `bytes_reclaimed`) and in the JSON
//!    exporter's counter registry, a healthy run books zero
//!    `chain_inconsistencies`, and survivors remain findable.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    DeviceSpec, MetricsRegistry, OpStatus, ServiceConfig, ShardBuildConfig, ShardSet,
    ShardedService, WriteOp,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 6;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(17)
}

fn dataset(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        for v in p.iter_mut() {
            *v = rng.gen::<f32>() * 10.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), DIM)
}

fn service(
    data: &Dataset,
    tag: &str,
    capacity: Option<usize>,
    mutate: impl FnOnce(&mut ServiceConfig),
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: seed(),
            dir: std::env::temp_dir().join(format!(
                "e2lsh-churn-{tag}-{}-seed{}",
                std::process::id(),
                seed()
            )),
            cache_blocks: 2048,
            capacity,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build");
    let mut config = ServiceConfig {
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: 1,
        s_override: Some(1_000_000),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        ..Default::default()
    };
    mutate(&mut config);
    ShardedService::new(shards, config)
}

/// 1. Running a shard out of object ids fails the insert cleanly and
///    leaves the session fully alive.
#[test]
fn id_exhaustion_fails_writes_cleanly_and_session_survives() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1D);
    // capacity == n: the build consumes every id, so the very first
    // online insert overflows the codec's id space.
    let data = dataset(16, &mut rng);
    let svc = service(&data, "exhaust", Some(8), |_| {});
    let session = svc.start();
    let client = session.client();

    let mut failed = 0;
    for _ in 0..6 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen::<f32>() * 10.0).collect();
        let r = client.write_blocking(WriteOp::Insert(&p)).wait();
        assert_eq!(
            r.status,
            OpStatus::Ok,
            "exhaustion is a failure, not a shed"
        );
        assert!(!r.applied, "insert into a full id space must not apply");
        failed += 1;
    }
    // The session is not wedged: queries still answer and a delete of a
    // build-time object still applies.
    let q = client.query(data.point(3)).wait();
    assert_eq!(q.status, OpStatus::Ok);
    assert_eq!(
        q.neighbors.first().map(|&(id, d)| (id, d)),
        Some((3, 0.0)),
        "query after exhausted inserts must still resolve (seed {seed})"
    );
    let del = client.write_blocking(WriteOp::Delete(3)).wait();
    assert!(del.applied, "delete must still apply after failed inserts");

    let report = session.shutdown();
    assert_eq!(
        report.writes_failed, failed,
        "every exhausted insert counted"
    );
    assert_eq!(report.writes_applied, 1, "only the delete applied");
    svc.shards().cleanup();
}

/// 2. Delete-heavy churn with maintenance on: the writers' background
///    ticks reclaim space and the counters flow to the report and the
///    exporter.
#[test]
fn maintenance_reclaims_and_counters_surface_in_report_and_export() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2E);
    let data = dataset(400, &mut rng);
    let svc = service(&data, "maint", Some(1200), |c| {
        // A generous budget so the first idle tick finishes a whole
        // scan pass instead of the test sleeping through hundreds of
        // 1 ms slices.
        c.maintenance_blocks_per_tick = 1_000_000;
    });
    let session = svc.start();
    let client = session.client();

    // Insert a wave of fresh points, then delete all of them plus a
    // slice of the build set: the inserted points' (mostly singleton)
    // blocks empty out and whole buckets go dead — guaranteed food for
    // the free list and the filter GC.
    let mut minted = Vec::new();
    for _ in 0..120 {
        let p: Vec<f32> = (0..DIM).map(|_| rng.gen::<f32>() * 10.0).collect();
        let r = client.write_blocking(WriteOp::Insert(&p)).wait();
        assert!(r.applied, "insert failed (seed {seed})");
        minted.push(r.id.expect("applied insert has an id"));
    }
    for id in minted {
        let r = client.write_blocking(WriteOp::Delete(id)).wait();
        assert!(r.applied, "delete of minted id failed (seed {seed})");
    }
    for id in (0..400u32).step_by(4) {
        let r = client.write_blocking(WriteOp::Delete(id)).wait();
        assert!(r.applied, "delete of build id {id} failed (seed {seed})");
    }

    // The writers tick on idle (1 ms receive timeout); give them a few
    // slices and poll until the pass lands.
    let mut report = session.metrics();
    for _ in 0..200 {
        if report.device.blocks_reclaimed > 0 && report.device.filter_bits_cleared > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        report = session.metrics();
    }
    assert!(
        report.device.blocks_reclaimed > 0,
        "churn freed no blocks (seed {seed})"
    );
    assert!(
        report.device.filter_bits_cleared > 0,
        "dead buckets but no filter bit cleared (seed {seed})"
    );
    assert!(
        report.device.bytes_reclaimed >= report.device.blocks_reclaimed * 512,
        "bytes must cover reclaimed blocks"
    );
    assert_eq!(
        report.device.chain_inconsistencies, 0,
        "healthy churn must not report inconsistencies (seed {seed})"
    );

    // Survivors still findable through the GC'd index.
    for probe in [1u32, 9, 21, 33] {
        let q = client.query(data.point(probe as usize)).wait();
        assert_eq!(q.status, OpStatus::Ok);
        assert_eq!(
            q.neighbors.first().map(|&(id, d)| (id, d)),
            Some((probe, 0.0)),
            "survivor {probe} lost after maintenance (seed {seed})"
        );
    }

    // The exporter carries the counters under their stable names.
    let reg = MetricsRegistry::from_report(&report);
    for name in [
        "blocks_reclaimed",
        "filter_bits_cleared",
        "bytes_reclaimed",
        "chain_inconsistencies",
    ] {
        assert!(reg.counter(name).is_some(), "exporter missing {name}");
    }
    assert_eq!(
        reg.counter("blocks_reclaimed"),
        Some(report.device.blocks_reclaimed)
    );
    assert_eq!(
        reg.counter("filter_bits_cleared"),
        Some(report.device.filter_bits_cleared)
    );

    let final_report = session.shutdown();
    assert!(final_report.device.blocks_reclaimed >= report.device.blocks_reclaimed);
    svc.shards().cleanup();
}
