//! Service-level behaviour of the cache replacement policy knob
//! ([`ServiceConfig::cache_policy`]): W-TinyLFU is a performance
//! feature, never an accuracy feature, so query results must be
//! byte-identical to the default LRU; the region-partitioned counters
//! must partition the global hit/miss totals; replica cache warming
//! must survive the admission filter; and in-flight read coalescing
//! must surface as `coalesced_reads` in the shutdown report and the
//! JSON export.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    report_json, skewed_queries, CachePolicy, DeviceSpec, Load, ServiceConfig, ShardBuildConfig,
    ShardSet, ShardedService, TinyLfuConfig, Topology,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const DIM: usize = 10;
const AMPLE: usize = 1_000_000;

fn make_dataset(n: usize, nq: usize) -> (Dataset, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(909);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut gen_points = |count: usize| {
        let mut ds = Dataset::with_capacity(DIM, count);
        let mut p = vec![0.0f32; DIM];
        for _ in 0..count {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (v, &cv) in p.iter_mut().zip(c) {
                *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
            }
            ds.push(&p);
        }
        ds
    };
    (gen_points(n), gen_points(nq))
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn shard_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("e2lsh-cache-policy-{}-{name}", std::process::id()))
}

fn build_shards(data: &Dataset, tag: &str, cache_blocks: usize) -> ShardSet {
    ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 31,
            dir: shard_dir(tag),
            cache_blocks,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build")
}

fn tinylfu() -> CachePolicy {
    CachePolicy::TinyLfu(TinyLfuConfig::default())
}

/// TinyLFU changes which blocks stay in DRAM, never which neighbors a
/// query returns — and its region counters exactly partition the
/// global hit/miss totals (under LRU every lookup is a bucket-region
/// lookup because no boundary is configured).
#[test]
fn tinylfu_results_match_lru_and_region_counters_partition() {
    let (data, base_queries) = make_dataset(900, 12);
    let queries = skewed_queries(&base_queries, 150, 1.1, 5);

    let run = |policy: CachePolicy, tag: &str| {
        let shards = build_shards(&data, tag, 512);
        let svc = ShardedService::new(
            shards,
            ServiceConfig {
                workers_per_replica: 2,
                contexts_per_worker: 8,
                k: 2,
                s_override: Some(AMPLE),
                device: DeviceSpec::SimPerWorker {
                    profile: DeviceProfile::ESSD,
                    num_devices: 1,
                },
                cache_policy: policy,
                ..Default::default()
            },
        );
        let report = svc.serve(&queries, Load::Closed { window: 16 });
        svc.shards().cleanup();
        report
    };

    let lru = run(CachePolicy::Lru, "lru");
    let tiny = run(tinylfu(), "tinylfu");

    assert_eq!(lru.results.len(), tiny.results.len());
    for qi in 0..lru.results.len() {
        assert_eq!(
            lru.results[qi], tiny.results[qi],
            "query {qi}: cache policy changed results"
        );
    }
    for (name, d) in [("lru", &lru.device), ("tinylfu", &tiny.device)] {
        assert_eq!(
            d.cache_table_hits + d.cache_bucket_hits,
            d.cache_hits,
            "{name}: region hit counters must partition the total"
        );
        assert_eq!(
            d.cache_table_misses + d.cache_bucket_misses,
            d.cache_misses,
            "{name}: region miss counters must partition the total"
        );
    }
    // LRU has no region boundary: everything lands in the bucket bins.
    assert_eq!(
        lru.device.cache_table_hits + lru.device.cache_table_misses,
        0
    );
    // TinyLFU auto-derives the boundary from the shard geometry, so the
    // table region sees traffic (every probe reads table blocks first).
    assert!(
        tiny.device.cache_table_hits + tiny.device.cache_table_misses > 0,
        "TinyLFU region boundary was not derived"
    );
    assert!(tiny.device.cache_hits > 0, "skewed stream produced no hits");
}

/// Replica cache warming must survive the TinyLFU admission filter: a
/// cold replica's sketch knows nothing about the donor's working set,
/// so without the privileged warm path every donated block would face
/// (and mostly lose) the admission contest.
#[test]
fn warm_replica_survives_tinylfu_admission_filter() {
    let (data, _) = make_dataset(400, 1);
    let mut shards = build_shards(&data, "warm", 4096);
    shards.set_cache_policy(tinylfu());
    let topo = Topology::new(shards, 2);

    // Fill replica 0's cache the way serving would: a lookup (feeding
    // the sketch) followed by the miss fill. Keys sit far above the
    // table/bucket boundary so the whole set shares the ample bucket
    // region instead of competing for the small table budget.
    let donor = Arc::clone(topo.replica(0, 0).cache().expect("shard is cached"));
    let donated: Vec<u64> = (0..64u64).map(|i| 1 << 20 | i).collect();
    for &k in &donated {
        let _ = donor.get(k);
        donor.insert(k, Arc::from(k.to_le_bytes().as_slice()));
    }
    assert_eq!(donor.len(), donated.len());

    let target = Arc::clone(topo.replica(0, 1).cache().expect("replica is cached"));
    assert!(target.is_empty(), "replica 1 starts cold");
    let copied = topo.warm_replica(0, 1, donated.len());
    assert_eq!(copied, donated.len(), "every donated block is admitted");
    assert_eq!(target.warmed(), copied as u64);
    assert_eq!(
        target.admission_rejected(),
        0,
        "warm path bypasses the filter"
    );
    for &k in &donated {
        let got = target.peek(k).expect("warmed block resident");
        assert_eq!(&got[..], &k.to_le_bytes()[..]);
    }
    topo.shards().cleanup();
}

/// Duplicate-heavy traffic through the reactor at high in-flight depth
/// must coalesce concurrent misses for the same block: the shutdown
/// report carries `coalesced_reads > 0` and the JSON export surfaces
/// all six cache-policy counters of schema v2.
#[test]
fn coalesced_reads_surface_in_report_and_export() {
    let (data, queries) = make_dataset(2400, 20);
    let shards = build_shards(&data, "coalesce", 1 << 12);
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 32,
            inflight_per_replica: 128,
            k: 2,
            s_override: Some(AMPLE),
            device: DeviceSpec::File { io_workers: 4 },
            cache_policy: tinylfu(),
            cache_coalescing: true,
            ..Default::default()
        },
    );
    let session = svc.start();
    let client = session.client();
    // Round-robin over a small point set: at depth 128 many identical
    // queries are in flight together, so their block misses overlap.
    let mut tickets = Vec::new();
    for _round in 0..24 {
        for qi in 0..queries.len() {
            tickets.push(client.query(queries.point(qi)));
        }
    }
    let total = tickets.len();
    let mut served = 0usize;
    for t in tickets {
        if t.wait().status == e2lsh_service::OpStatus::Ok {
            served += 1;
        }
    }
    assert!(
        served * 2 > total,
        "most queries must be admitted (served {served}/{total})"
    );
    let report = session.shutdown();
    svc.shards().cleanup();

    assert!(
        report.device.coalesced_reads > 0,
        "no reads coalesced at inflight 128 over duplicate-heavy traffic"
    );
    // The export carries every schema-v2 cache counter.
    let doc = report_json(&report);
    let v: serde_json::Value = serde_json::from_str(&doc).expect("export parses");
    let counters = v
        .get("counters")
        .and_then(|c| c.as_object())
        .expect("counters object");
    for key in [
        "cache_admission_rejected",
        "cache_table_hits",
        "cache_table_misses",
        "cache_bucket_hits",
        "cache_bucket_misses",
        "coalesced_reads",
    ] {
        let val = counters
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("export missing counter `{key}`"));
        assert!(val.1.as_f64().is_some(), "`{key}` is not numeric");
    }
    let exported = counters
        .iter()
        .find(|(k, _)| k == "coalesced_reads")
        .unwrap();
    assert_eq!(
        exported.1.as_f64().unwrap() as u64,
        report.device.coalesced_reads,
        "export disagrees with the report"
    );
}
