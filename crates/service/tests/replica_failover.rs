//! Failover regression: killing a replica mid-run must degrade into
//! re-routing, not into lost writes, a shed storm, or a hung collector.
//!
//! The scenarios (seeded; set `E2LSH_TEST_SEED` to reproduce a CI
//! failure locally — the CI `replicas` job runs this file in release
//! under several seeds):
//!
//! 1. **fence before the run** — the router must simply route around
//!    the dead replica: zero load lands on it, results are unchanged;
//! 2. **fence mid-run under a mixed read–write stream** — outstanding
//!    queries on the dead replica re-dispatch to its sibling
//!    (`failovers > 0`), *every* write of the stream is applied
//!    (`write_latencies` covers the stream, `writes_failed == 0`,
//!    `shed_writes == 0`), nothing is shed under the generous budget
//!    (no shed storm), the run terminates, and a quiescent pass
//!    afterwards sees a database consistent with the op stream
//!    (deleted ids gone, inserted ids findable);
//! 3. **fence the last replica of a shard** — reads degrade explicitly
//!    (outstanding queries complete with that shard's partial empty,
//!    later ones shed with `Overload`) and the run still terminates.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    mixed_ops, AdmissionBudget, DeviceSpec, Load, Op, OpStatus, RoutePolicy, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

const DIM: usize = 8;
const AMPLE: usize = 1_000_000;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn build_service_on(
    data: &Dataset,
    replicas: usize,
    tag: &str,
    build_seed: u64,
    profile: DeviceProfile,
    num_devices: usize,
    routing: RoutePolicy,
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: build_seed,
            dir: std::env::temp_dir().join(format!(
                "e2lsh-failover-{}-{tag}-seed{build_seed}",
                std::process::id()
            )),
            cache_blocks: 2048,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            replicas_per_shard: replicas,
            routing,
            workers_per_replica: 1,
            contexts_per_worker: 8,
            k: 3,
            s_override: Some(AMPLE),
            device: DeviceSpec::SimShared {
                profile,
                num_devices,
            },
            // Generous, but finite: a failover-induced shed storm would
            // show up as shed_queries > 0.
            admission: AdmissionBudget::depth(512).into(),
            ..Default::default()
        },
    )
}

fn build_service(data: &Dataset, replicas: usize, tag: &str, build_seed: u64) -> ShardedService {
    build_service_on(
        data,
        replicas,
        tag,
        build_seed,
        DeviceProfile::ESSD,
        1,
        RoutePolicy::PowerOfTwoChoices,
    )
}

#[test]
fn fenced_replica_receives_no_load_and_results_hold() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF0);
    let data = clustered(700, &mut rng);
    let queries = clustered(48, &mut rng);

    let svc = build_service(&data, 3, "prefence", seed ^ 0xF0);
    let expect = svc.serve(&queries, Load::Closed { window: 8 });

    svc.topology().fence(0, 1);
    svc.topology().fence(1, 2);
    let rep = svc.serve(&queries, Load::Closed { window: 8 });
    assert_eq!(rep.shed_queries, 0);
    assert_eq!(rep.failovers, 0, "pre-fenced replicas need no failover");
    assert_eq!(rep.lost_partials, 0);
    assert_eq!(rep.replica_load[0][1], 0, "fenced replica got work");
    assert_eq!(rep.replica_load[1][2], 0, "fenced replica got work");
    for qi in 0..queries.len() {
        assert_eq!(
            rep.results[qi], expect.results[qi],
            "query {qi}: routing around a fence changed results (seed {seed})"
        );
    }
    svc.shards().cleanup();
}

#[test]
fn mid_run_fence_fails_over_without_losing_writes() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA11);
    let data = clustered(900, &mut rng);
    let pool = clustered(260, &mut rng);
    let queries = clustered(360, &mut rng);
    let w = mixed_ops(queries.len(), 0.2, 0.4, data.len(), pool.len(), seed ^ 3);
    assert!(w.num_inserts > 0 && w.num_deletes > 0);

    // The fence must land while the dead replica is actually holding
    // routed queries; a write-heavy instant can leave the read queues
    // momentarily empty, so try a few fence offsets on fresh services —
    // the safety assertions (zero lost writes, no shed storm, clean
    // termination) must hold on *every* attempt, the liveness assertion
    // (failovers observed) on at least one.
    let mut observed_failover = false;
    for (attempt, delay_ms) in [40u64, 70, 100, 130, 25].iter().enumerate() {
        let svc = build_service(&data, 2, &format!("midrun{attempt}"), seed ^ 0xFA11);
        let mut rep = None;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Fence one replica of shard 0 while the run is in full
                // swing (the closed window keeps 32 ops outstanding).
                std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
                assert!(svc.topology().fence(0, 1));
            });
            rep = Some(svc.serve_mixed(&queries, &pool, &w.ops, Load::Closed { window: 32 }));
        });
        let rep = rep.unwrap();

        // Zero lost writes: every write of the stream was applied.
        assert_eq!(rep.shed_writes, 0, "writes must never shed (seed {seed})");
        assert_eq!(rep.writes_failed, 0, "writes failed (seed {seed})");
        assert_eq!(
            rep.write_latencies.len(),
            w.num_inserts + w.num_deletes,
            "lost writes (seed {seed})"
        );
        // No shed storm: failover re-dispatch blocks instead of
        // shedding, and the budget is generous.
        assert_eq!(rep.shed_queries, 0, "shed storm after fence (seed {seed})");
        assert_eq!(rep.lost_partials, 0, "sibling was live (seed {seed})");
        // Terminal accounting: every query completed.
        assert_eq!(rep.results.len(), queries.len());
        assert!(rep.statuses.iter().all(|&s| s == OpStatus::Ok));

        if rep.failovers == 0 {
            // Fence landed in a lull — try another offset.
            svc.shards().cleanup();
            continue;
        }
        observed_failover = true;

        // Replay the stream to get the live set, then check a quiescent
        // pass: deleted ids gone, all returned ids live, and the fenced
        // replica keeps taking no traffic.
        let mut live: HashSet<u32> = (0..data.len() as u32).collect();
        for op in &w.ops {
            match *op {
                Op::Query(_) => {}
                Op::Insert(j) => {
                    live.insert((data.len() + j) as u32);
                }
                Op::Delete(g) => {
                    assert!(live.remove(&g));
                }
            }
        }
        let quiet = svc.serve(&queries, Load::Closed { window: 8 });
        assert_eq!(quiet.failovers, 0);
        assert_eq!(quiet.replica_load[0][1], 0, "fenced replica served reads");
        for (qi, res) in quiet.results.iter().enumerate() {
            for &(id, _) in res {
                assert!(
                    live.contains(&id),
                    "quiescent query {qi}: id {id} deleted or never inserted (seed {seed})"
                );
            }
        }
        svc.shards().cleanup();
        break;
    }
    assert!(
        observed_failover,
        "no fence offset caught the run with routed queries outstanding (seed {seed})"
    );
}

#[test]
fn fencing_the_last_replica_degrades_without_hanging() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1A57);
    let data = clustered(700, &mut rng);
    let queries = clustered(300, &mut rng);

    // R = 1: shard 0's only replica dies mid-run. The run must still
    // terminate — outstanding queries complete with shard 0's partial
    // empty, later ones shed — and shard 1 keeps serving. The HDD
    // profile's millisecond probes keep the run far longer than the
    // fence delay even in release, so queries are guaranteed to be both
    // outstanding at the fence and still undispatched after it.
    let svc = build_service_on(
        &data,
        1,
        "lastrep",
        seed ^ 0x1A57,
        DeviceProfile::HDD,
        8,
        RoutePolicy::PowerOfTwoChoices,
    );
    let mut rep = None;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert!(svc.topology().fence(0, 0));
        });
        rep = Some(svc.serve(&queries, Load::Closed { window: 16 }));
    });
    let rep = rep.unwrap(); // completing at all is the core assertion

    assert_eq!(rep.results.len(), queries.len());
    let completed = rep.statuses.iter().filter(|&&s| s == OpStatus::Ok).count();
    assert_eq!(completed + rep.shed_queries, queries.len());
    assert!(
        rep.shed_queries > 0,
        "queries dispatched after the fence must shed (seed {seed})"
    );
    assert!(
        rep.lost_partials > 0,
        "outstanding shard-0 partials must be abandoned (seed {seed})"
    );
    // Degraded-mode answers never invent ids.
    for res in &rep.results {
        for &(id, _) in res {
            assert!((id as usize) < data.len());
        }
    }
    svc.shards().cleanup();
}

/// Broadcast + mid-run fence must terminate: the per-query quota is the
/// dispatch set actually sent (shrunk by the fence), not the live set
/// at run start — a fenced replica's unanswered partials stop being
/// owed instead of hanging the collector, and queries dispatched after
/// the fence only expect the surviving replicas. (Regression: the
/// first implementation pinned the quota at run start and deadlocked
/// here, including on the automatic fence a worker panic performs.)
#[test]
fn broadcast_fence_mid_run_terminates_with_full_results() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBCA5);
    let data = clustered(700, &mut rng);
    let queries = clustered(200, &mut rng);

    let svc = build_service_on(
        &data,
        3,
        "bcastfence",
        seed ^ 0xBCA5,
        DeviceProfile::HDD,
        8,
        RoutePolicy::Broadcast,
    );
    let mut rep = None;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert!(svc.topology().fence(0, 1));
        });
        rep = Some(svc.serve(&queries, Load::Closed { window: 16 }));
    });
    let rep = rep.unwrap(); // terminating at all is the regression

    // Two live replicas per shard remain: every query still completes
    // with full (replica-redundant) answers, nothing sheds, nothing is
    // lost.
    assert_eq!(rep.results.len(), queries.len());
    assert!(rep.statuses.iter().all(|&s| s == OpStatus::Ok));
    assert_eq!(rep.shed_queries, 0, "siblings were live (seed {seed})");
    assert_eq!(rep.lost_partials, 0, "siblings were live (seed {seed})");
    assert_eq!(rep.failovers, 0, "broadcast needs no re-dispatch");
    for (qi, res) in rep.results.iter().enumerate() {
        assert!(!res.is_empty(), "query {qi} returned nothing (seed {seed})");
        let mut ids: Vec<u32> = res.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), res.len(), "duplicate ids after broadcast merge");
        assert!(ids.iter().all(|&id| (id as usize) < data.len()));
    }
    svc.shards().cleanup();
}
