//! Reactor-engine regression: the completion-driven per-replica event
//! loop must be a *performance* feature, never an accuracy or liveness
//! feature.
//!
//! * Deep in-flight windows (slots ≫ compute threads) return exactly
//!   the single-threaded batch engine's results — same oracle as
//!   `service_equivalence`, driven through `inflight_per_replica`.
//! * A thousand interleaved slots over a four-thread compute pool is a
//!   supported steady state, not an overload: every ticket resolves.
//! * Fencing a replica mid-run with a deep in-flight window re-serves
//!   its outstanding slots on the sibling; no ticket is lost or shed.
//! * `ServiceConfig::resolved_inflight` keeps legacy configs at their
//!   pre-reactor capacity (`workers × contexts`).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    skewed_queries, DeviceSpec, Load, OpStatus, RoutePolicy, ServiceConfig, ShardBuildConfig,
    ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, EngineConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 10;
const AMPLE: usize = 1_000_000;

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn shard_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("e2lsh-reactor-test-{}-{tag}", std::process::id()))
}

/// Reference results: batch engine over one index per shard, merged —
/// identical to the `service_equivalence` oracle.
fn reference_results(shards: &ShardSet, queries: &Dataset, k: usize) -> Vec<Vec<(u32, f32)>> {
    let mut merged: Vec<Vec<(u32, f32)>> = vec![Vec::new(); queries.len()];
    for shard in shards.shards() {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&shard.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, k);
        cfg.s_override = Some(AMPLE);
        let data = shard.data.read().unwrap();
        let report = run_queries(&index, &data, queries, &cfg, &mut dev);
        for (qi, out) in report.outcomes.iter().enumerate() {
            merged[qi].extend(
                out.neighbors
                    .iter()
                    .map(|&(id, d)| (shard.to_global(id), d)),
            );
        }
    }
    for m in &mut merged {
        m.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        m.truncate(k);
    }
    merged
}

fn build(
    data: &Dataset,
    tag: &str,
    num_shards: usize,
    replicas: usize,
    compute: usize,
    inflight: usize,
    k: usize,
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards,
            seed: 77,
            dir: shard_dir(tag),
            cache_blocks: 1024,
            ..Default::default()
        },
        params_for,
    )
    .unwrap();
    ShardedService::new(
        shards,
        ServiceConfig {
            replicas_per_shard: replicas,
            routing: RoutePolicy::PowerOfTwoChoices,
            workers_per_replica: compute,
            inflight_per_replica: inflight,
            k,
            s_override: Some(AMPLE),
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            ..Default::default()
        },
    )
}

/// Slots ≫ compute threads must not change results: a 64-deep reactor
/// window over a 2-thread pool returns the reference bit-exactly, both
/// through the legacy closed-loop wrapper and a hand-driven session.
#[test]
fn deep_inflight_matches_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xEAC7);
    let data = clustered(1100, &mut rng);
    let queries = clustered(24, &mut rng);
    let k = 5;

    let svc = build(&data, "deep", 2, 1, 2, 64, k);
    let expect = reference_results(svc.shards(), &queries, k);

    let report = svc.serve(&queries, Load::Closed { window: 128 });
    for (qi, want) in expect.iter().enumerate() {
        assert_eq!(
            &report.results[qi], want,
            "query {qi}: deep-inflight reactor differs from batch engine"
        );
    }

    let session = svc.start();
    let client = session.client();
    let tickets: Vec<_> = (0..queries.len())
        .map(|qi| client.query(queries.point(qi)))
        .collect();
    for (qi, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            &t.wait().neighbors,
            &expect[qi],
            "query {qi}: deep-inflight session differs from batch engine"
        );
    }
    drop(session.shutdown());
    svc.shards().cleanup();
}

/// 1024 interleaved slots over a 4-thread compute pool: the in-flight
/// query count is decoupled from the thread count, every ticket
/// resolves, and the results are still the reference.
#[test]
fn kiloslot_window_over_four_threads_resolves_everything() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51075);
    let data = clustered(900, &mut rng);
    let base = clustered(40, &mut rng);
    // Skewed repeats: far more in-flight queries than unique points.
    let queries = skewed_queries(&base, 500, 1.1, 9);
    let k = 2;

    let svc = build(&data, "kiloslot", 1, 1, 4, 1024, k);
    let expect = reference_results(svc.shards(), &queries, k);

    // The closed window exceeds the slot count: the reactor must park
    // the overflow in its admission queue, not deadlock or shed.
    let report = svc.serve(&queries, Load::Closed { window: 2048 });
    assert_eq!(report.results.len(), queries.len());
    assert_eq!(report.shed_queries, 0, "deep window shed queries");
    assert!(report.statuses.iter().all(|&s| s == OpStatus::Ok));
    for (qi, want) in expect.iter().enumerate() {
        assert_eq!(&report.results[qi], want, "query {qi}");
    }
    assert!(report.qps() > 0.0);
    svc.shards().cleanup();
}

/// Fence a replica while a deep in-flight window is outstanding: its
/// slots re-dispatch to the sibling, every ticket resolves, nothing is
/// shed, and the answers are still the reference (the ample candidate
/// budget makes them re-dispatch-order independent).
#[test]
fn mid_run_fence_with_deep_inflight_resolves_all_tickets() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFE2CE);
    let data = clustered(1000, &mut rng);
    let queries = clustered(320, &mut rng);
    let k = 3;

    let mut observed_failover = false;
    for (attempt, delay_ms) in [30u64, 60, 90, 15, 120].iter().enumerate() {
        let svc = build(&data, &format!("fence{attempt}"), 2, 2, 2, 128, k);
        let expect = reference_results(svc.shards(), &queries, k);
        let mut rep = None;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
                assert!(svc.topology().fence(0, 1));
            });
            rep = Some(svc.serve(&queries, Load::Closed { window: 256 }));
        });
        let rep = rep.unwrap();

        // Liveness and safety on every attempt, whether or not the
        // fence caught slots in flight.
        assert_eq!(rep.results.len(), queries.len());
        assert_eq!(rep.shed_queries, 0, "shed storm after fence");
        assert_eq!(rep.lost_partials, 0, "sibling was live");
        assert!(rep.statuses.iter().all(|&s| s == OpStatus::Ok));
        for (qi, want) in expect.iter().enumerate() {
            assert_eq!(&rep.results[qi], want, "query {qi} after fence");
        }
        let caught = rep.failovers > 0;
        observed_failover |= caught;
        svc.shards().cleanup();
        if caught {
            break;
        }
    }
    assert!(
        observed_failover,
        "no fence offset caught the run with slots outstanding"
    );
}

/// `resolved_inflight` keeps legacy configs at their pre-reactor
/// capacity and lets the new knob override it.
#[test]
fn resolved_inflight_derives_legacy_capacity() {
    let legacy = ServiceConfig {
        workers_per_replica: 3,
        contexts_per_worker: 8,
        ..Default::default()
    };
    assert_eq!(legacy.resolved_inflight(), 24);

    let explicit = ServiceConfig {
        workers_per_replica: 4,
        contexts_per_worker: 8,
        inflight_per_replica: 1024,
        ..Default::default()
    };
    assert_eq!(explicit.resolved_inflight(), 1024);

    // Degenerate knobs still yield at least one slot.
    let degenerate = ServiceConfig {
        workers_per_replica: 0,
        contexts_per_worker: 0,
        ..Default::default()
    };
    assert_eq!(degenerate.resolved_inflight(), 1);
}
