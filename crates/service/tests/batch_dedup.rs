//! Property tests for batched serving: the dedup map and the bounded
//! admission queue (the `cache_props.rs` treatment, applied to the
//! admission layer), plus an engine-level probe-count check that
//! duplicate queries in one batch cost exactly one probe.
//!
//! Checked:
//!
//! * `dedup_batch` groups exactly the byte-identical queries (bit
//!   pattern of the coordinates), keeps first-seen order and
//!   round-trips (`rep[uniques[u]] == u`);
//! * the gated queue never exceeds its depth/byte budget, sheds *iff* a
//!   budget would be broken, pops FIFO, and its peak-depth counter is
//!   the exact high-water mark (reference model: a `VecDeque`);
//! * `query_batch` on a duplicate-heavy batch issues exactly the
//!   engine probes of its unique sub-batch (`DeviceStats` / `total_io`
//!   counters) and returns byte-identical results for duplicates.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::admission::{gated, AdmissionBudget};
use e2lsh_service::{
    dedup_batch, DeviceSpec, Load, OpStatus, ServiceConfig, ShardBuildConfig, ShardSet,
    ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

// ---------------------------------------------------------------- dedup map

/// Build a small-dim dataset from integer grid points so duplicates are
/// easy for proptest to generate.
fn grid_batch(points: &[(i8, i8)]) -> Dataset {
    let mut ds = Dataset::with_capacity(2, points.len());
    for &(x, y) in points {
        ds.push(&[x as f32, y as f32]);
    }
    ds
}

proptest! {
    #[test]
    fn dedup_groups_exactly_byte_identical_queries(
        points in proptest::collection::vec((-3i8..3, -3i8..3), 0..60),
    ) {
        let batch = grid_batch(&points);
        let dd = dedup_batch(&batch);
        prop_assert_eq!(dd.rep.len(), batch.len());
        // Round-trip: each unique's first occurrence maps to itself.
        for (u, &i) in dd.uniques.iter().enumerate() {
            prop_assert_eq!(dd.rep[i], u);
        }
        // First-seen order: uniques are strictly ascending input indices.
        prop_assert!(dd.uniques.windows(2).all(|w| w[0] < w[1]));
        // Two inputs share a representative iff their bytes are equal.
        for i in 0..batch.len() {
            for j in 0..batch.len() {
                let same_bytes = batch.point(i) == batch.point(j);
                prop_assert_eq!(
                    dd.rep[i] == dd.rep[j],
                    same_bytes,
                    "inputs {} and {} grouped wrongly", i, j
                );
            }
        }
        // The unique count matches a reference hash of the bit patterns.
        let mut keys: HashMap<Vec<u32>, ()> = HashMap::new();
        for i in 0..batch.len() {
            keys.insert(batch.point(i).iter().map(|v| v.to_bits()).collect(), ());
        }
        prop_assert_eq!(dd.uniques.len(), keys.len());
    }

    #[test]
    fn dedup_distinguishes_nan_payloads_and_signed_zero(_x in 0..1) {
        let mut ds = Dataset::with_capacity(1, 4);
        ds.push(&[0.0f32]);
        ds.push(&[-0.0f32]);
        ds.push(&[f32::NAN]);
        ds.push(&[f32::NAN]);
        let dd = dedup_batch(&ds);
        // 0.0 != -0.0 bytewise; the two NaNs here share a bit pattern.
        prop_assert_eq!(dd.uniques.len(), 3);
        prop_assert_ne!(dd.rep[0], dd.rep[1]);
        prop_assert_eq!(dd.rep[2], dd.rep[3]);
    }
}

// ------------------------------------------------- admission queue model

proptest! {
    /// The gated queue agrees with a VecDeque reference model under any
    /// push/pop interleaving: same shed verdicts, same FIFO order, and
    /// the budget invariants hold at every step. An op `(kind, cost)`
    /// is a push of `cost` bytes when `kind == 0`, else a pop.
    #[test]
    fn gated_queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..2, 1usize..64), 1..400),
        max_depth in 1usize..12,
        max_bytes in 32usize..512,
    ) {
        let budget = AdmissionBudget { max_depth, max_bytes };
        let (tx, rx) = gated::<u64>(0, budget);
        let mut model: VecDeque<(u64, usize)> = VecDeque::new();
        let mut model_bytes = 0usize;
        let mut model_peak = 0usize;
        let mut model_shed = 0u64;
        let mut next_id = 0u64;
        for &(kind, cost) in &ops {
            match kind {
                0 => {
                    let fits = model.len() < max_depth && model_bytes + cost <= max_bytes;
                    let got = tx.try_send(next_id, cost);
                    prop_assert_eq!(
                        got.is_ok(), fits,
                        "push(cost {}) at depth {}/{} bytes {}/{}",
                        cost, model.len(), max_depth, model_bytes, max_bytes
                    );
                    if fits {
                        model.push_back((next_id, cost));
                        model_bytes += cost;
                        model_peak = model_peak.max(model.len());
                    } else {
                        model_shed += 1;
                        // The typed error snapshots the full queue.
                        let e = got.unwrap_err();
                        prop_assert_eq!(e.shard, 0);
                    }
                    next_id += 1;
                }
                _ => {
                    let want = model.pop_front();
                    match want {
                        Some((id, cost)) => {
                            // FIFO: the queue must pop the model's head.
                            prop_assert_eq!(rx.try_recv(), Ok(id));
                            model_bytes -= cost;
                        }
                        None => prop_assert!(rx.try_recv().is_err()),
                    }
                }
            }
            // Budget invariants hold at every step.
            prop_assert!(tx.depth() <= max_depth);
            prop_assert_eq!(tx.depth(), model.len());
        }
        let stats = tx.stats();
        prop_assert_eq!(stats.peak_depth, model_peak);
        prop_assert_eq!(stats.shed, model_shed);
    }
}

// ------------------------------------------- engine probes under dedup

fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..6)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

/// Duplicates in one batch cost exactly one engine probe: the batch's
/// total I/O equals its unique sub-batch's, is strictly below per-query
/// serving when duplicates exist, and duplicate results are
/// byte-identical.
#[test]
fn duplicates_cost_one_probe_and_results_are_byte_identical() {
    const AMPLE: usize = 1_000_000;
    let data = clustered(900, 10, 21);
    let base = clustered(24, 10, 22);
    // Duplicate-heavy batch: 96 queries over 24 distinct points.
    let picks = e2lsh_service::zipf_indices(base.len(), 96, 1.2, 23);
    let mut batch = Dataset::with_capacity(10, picks.len());
    for &i in &picks {
        batch.push(base.point(i));
    }

    let build = |tag: &str| {
        ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: 2,
                seed: 5,
                dir: std::env::temp_dir()
                    .join(format!("e2lsh-batch-dedup-{}-{tag}", std::process::id())),
                cache_blocks: 0, // uncached: total_io counts every probe
                ..Default::default()
            },
            |local| {
                E2lshParams::derive(
                    local.len(),
                    2.0,
                    4.0,
                    1.0,
                    local.max_abs_coord(),
                    local.dim(),
                )
            },
        )
        .expect("shard build")
    };
    let config = ServiceConfig {
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: 3,
        s_override: Some(AMPLE),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        ..Default::default()
    };

    let svc = ShardedService::new(build("a"), config.clone());
    let rep = svc.query_batch(&batch);
    assert!(rep.collapsed > 0, "batch must contain duplicates");
    assert_eq!(rep.unique + rep.collapsed, batch.len());
    assert_eq!(rep.shed, 0);
    assert!(rep.statuses.iter().all(|&s| s == OpStatus::Ok));

    // Duplicates: byte-identical results (same ids, same distance bits).
    let dd = dedup_batch(&batch);
    for i in 0..batch.len() {
        for j in (i + 1)..batch.len() {
            if dd.rep[i] == dd.rep[j] {
                assert_eq!(
                    rep.results[i], rep.results[j],
                    "duplicates {i} and {j} diverged"
                );
            }
        }
    }

    // Exactly one engine probe per unique: the batch's I/O equals the
    // unique sub-batch's on an identical fresh service (deterministic
    // sim device + ample budget ⇒ equal per-query probe counts).
    let mut uniq = Dataset::with_capacity(10, dd.uniques.len());
    for &i in &dd.uniques {
        uniq.push(batch.point(i));
    }
    let svc_u = ShardedService::new(build("b"), config.clone());
    let rep_u = svc_u.query_batch(&uniq);
    assert_eq!(rep_u.collapsed, 0);
    assert_eq!(
        rep.total_io, rep_u.total_io,
        "dedup must reduce the batch to its unique probes"
    );
    assert_eq!(rep.device.completed, rep_u.device.completed);

    // And strictly fewer probes than per-query serving of the full
    // duplicate-heavy stream.
    let svc_q = ShardedService::new(build("c"), config);
    let rep_q = svc_q.serve(&batch, Load::Closed { window: 8 });
    assert!(
        rep.total_io < rep_q.total_io,
        "batch {} probes !< per-query {} probes",
        rep.total_io,
        rep_q.total_io
    );
    // Same answers, either way.
    for i in 0..batch.len() {
        assert_eq!(rep.results[i], rep_q.results[i], "query {i}");
    }

    svc.shards().cleanup();
    svc_u.shards().cleanup();
    svc_q.shards().cleanup();
}

/// A bounded batch: shed queries report `Shed` with empty results while
/// admitted ones complete; duplicates share their representative's fate.
#[test]
fn bounded_batch_sheds_per_query_with_shared_fate() {
    let data = clustered(500, 8, 31);
    let base = clustered(16, 8, 32);
    let picks = e2lsh_service::zipf_indices(base.len(), 64, 1.1, 33);
    let mut batch = Dataset::with_capacity(8, picks.len());
    for &i in &picks {
        batch.push(base.point(i));
    }
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 9,
            dir: std::env::temp_dir().join(format!("e2lsh-batch-shed-{}", std::process::id())),
            cache_blocks: 0,
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 1,
            contexts_per_worker: 2,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimPerWorker {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            // The whole batch lands at one instant: a small depth bound
            // must shed the tail of the unique set.
            admission: AdmissionBudget::depth(4).into(),
            ..Default::default()
        },
    );
    let rep = svc.query_batch(&batch);
    assert!(rep.shed > 0, "tiny budget must shed part of the batch");
    assert!(rep.shed < batch.len(), "some queries must be admitted");
    assert!(rep.peak_queue_depth <= 4);
    let dd = dedup_batch(&batch);
    for i in 0..batch.len() {
        match rep.statuses[i] {
            OpStatus::Ok => assert!(!rep.results[i].is_empty() || rep.latencies[i] >= 0.0),
            OpStatus::Shed => {
                assert!(rep.results[i].is_empty());
                assert_eq!(rep.latencies[i], 0.0);
            }
        }
        // Duplicates share fate.
        for j in 0..batch.len() {
            if dd.rep[i] == dd.rep[j] {
                assert_eq!(rep.statuses[i], rep.statuses[j]);
            }
        }
    }
    svc.shards().cleanup();
}
