//! Session-API suite: concurrent multi-client sessions, ticket
//! invariants, and wrapper/session equivalence.
//!
//! What is checked (seeded; set `E2LSH_TEST_SEED` to reproduce a CI
//! failure locally — the CI `session` job runs this file in release
//! under several seeds):
//!
//! 1. **multi-client concurrency** — N threads each driving a clone of
//!    one `Client` with mixed reads/writes; every ticket resolves
//!    exactly once, shed tickets carry an `Overload` with a positive
//!    `retry_after`, and a quiescent pass is checked against a
//!    brute-force mirror of the op stream (deleted ids gone, reported
//!    distances exact, results bit-equal to a fresh legacy `serve`);
//! 2. **wrapper equivalence** — `serve`, `serve_mixed` and
//!    `query_batch` are thin wrappers over the session API; each is
//!    asserted bit-exact against a hand-driven session on the same
//!    seeded workload;
//! 3. **session mechanics** — id minting under shed writes (no gaps),
//!    per-client fairness caps, metrics snapshots and interval deltas,
//!    and shed-on-closed-session submissions.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    mixed_ops, AdmissionBudget, AdmissionControl, DeviceSpec, Load, Op, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService, WriteOp, CLIENT_THROTTLE_SHARD,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

const DIM: usize = 8;
const AMPLE: usize = 1_000_000;
const K: usize = 3;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn build_service(
    data: &Dataset,
    tag: &str,
    build_seed: u64,
    admission: AdmissionControl,
    mutate: impl FnOnce(&mut ServiceConfig),
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: build_seed,
            dir: std::env::temp_dir().join(format!(
                "e2lsh-session-api-{}-{tag}-seed{}",
                std::process::id(),
                seed()
            )),
            cache_blocks: 2048,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build");
    let mut config = ServiceConfig {
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: K,
        s_override: Some(AMPLE),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        admission,
        ..Default::default()
    };
    mutate(&mut config);
    ShardedService::new(shards, config)
}

/// 1. Concurrent multi-client session: mixed reads/writes from N
///    threads, ticket invariants, quiescent brute-force oracle check.
#[test]
fn multi_client_session_with_oracle_check() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5E55);
    const N0: usize = 600;
    const THREADS: usize = 4;
    const PER_THREAD_POOL: usize = 16;
    let data = clustered(N0, &mut rng);
    let queries = clustered(24, &mut rng);
    let pool = clustered(THREADS * PER_THREAD_POOL, &mut rng);

    // A finite read budget so query sheds are *possible* (their tickets
    // must then carry retry hints); writes go through the blocking path
    // here, so they never shed.
    let svc = build_service(
        &data,
        "multi",
        seed ^ 0x5E55,
        AdmissionBudget::depth(64).into(),
        |_| {},
    );
    let session = svc.start();
    let client = session.client();

    // Each thread drives its own clone of the one client.
    let per_thread: Vec<(usize, Vec<u32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = client.clone();
                let queries = &queries;
                let pool = &pool;
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (t as u64) << 8);
                    let mut my_live: Vec<u32> = Vec::new();
                    let mut deleted: Vec<u32> = Vec::new();
                    let mut next_point = t * PER_THREAD_POOL;
                    let mut qtickets = Vec::new();
                    for _ in 0..60 {
                        let roll: f64 = rng.gen();
                        if roll < 0.7 {
                            let qi = rng.gen_range(0..queries.len());
                            qtickets.push(client.query(queries.point(qi)));
                        } else if roll < 0.85 && next_point < (t + 1) * PER_THREAD_POOL {
                            // Insert one of this thread's pool points and
                            // learn the minted id from the ticket.
                            let r = client
                                .write_blocking(WriteOp::Insert(pool.point(next_point)))
                                .wait();
                            next_point += 1;
                            assert_eq!(r.status, OpStatus::Ok, "blocking writes never shed");
                            assert!(r.applied, "insert failed (seed {seed})");
                            my_live.push(r.id.expect("applied insert has an id"));
                        } else if let Some(pos) =
                            (!my_live.is_empty()).then(|| rng.gen_range(0..my_live.len()))
                        {
                            // Delete an id this thread inserted — its
                            // insert has resolved, so the id is safe to
                            // reference (the session's delete contract).
                            let g = my_live.swap_remove(pos);
                            let r = client.write_blocking(WriteOp::Delete(g)).wait();
                            assert_eq!(r.status, OpStatus::Ok);
                            assert!(r.applied, "delete of live id {g} failed (seed {seed})");
                            deleted.push(g);
                        }
                    }
                    // Ticket invariants: every query ticket resolves
                    // exactly once, shed tickets carry retry hints.
                    let mut served = 0usize;
                    for t in qtickets {
                        let r = t.wait_ref();
                        assert!(t.is_resolved());
                        assert_eq!(t.poll().expect("resolved").status, r.status);
                        match r.status {
                            OpStatus::Ok => {
                                served += 1;
                                assert!(r.overload.is_none());
                                assert!(r.latency >= r.service_latency);
                            }
                            OpStatus::Shed => {
                                let e = r.overload.expect("shed carries the Overload");
                                assert!(e.retry_after > 0.0, "shed without retry hint");
                                assert!(r.neighbors.is_empty());
                                assert_eq!(r.latency, 0.0);
                            }
                        }
                    }
                    assert!(served > 0, "thread {t} served nothing (seed {seed})");
                    let inserted = next_point - t * PER_THREAD_POOL;
                    (inserted, deleted)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Mirror the database: base ids minus deletes, plus applied inserts
    // (ids were minted by the session; learn the full set from the
    // insert count — ids are gap-free by the minting contract).
    let total_inserted: usize = per_thread.iter().map(|(i, _)| *i).sum();
    let mut live: HashSet<u32> = (0..N0 as u32).collect();
    for g in N0 as u32..(N0 + total_inserted) as u32 {
        live.insert(g);
    }
    for (_, deleted) in &per_thread {
        for g in deleted {
            assert!(live.remove(g), "id {g} deleted twice");
        }
    }
    // All-point mirror for distance checks (insert order of pool points
    // is not deterministic across threads, so check distances by id
    // via the service's own shard data — the oracle here is brute
    // force over coordinates the mirror can see: base + pool).
    let mut m = session.metrics();
    assert_eq!(m.writes_applied, {
        let deletes: usize = per_thread.iter().map(|(_, d)| d.len()).sum();
        total_inserted + deletes
    });
    assert_eq!(m.writes_failed, 0);
    assert_eq!(m.shed_writes, 0);

    // Quiescent pass through the live session: deleted ids are gone,
    // every reported id is live, distances are exact (brute-force
    // recomputation), and the ranking is ascending.
    let quiet_client = session.client();
    for qi in 0..queries.len() {
        let r = quiet_client.query(queries.point(qi)).wait();
        assert_eq!(r.status, OpStatus::Ok, "quiescent query shed (seed {seed})");
        let mut prev = f32::NEG_INFINITY;
        for &(id, d) in &r.neighbors {
            assert!(
                live.contains(&id),
                "quiescent query {qi}: id {id} deleted or never inserted (seed {seed})"
            );
            assert!(d >= prev, "distances not ascending");
            prev = d;
            if (id as usize) < N0 {
                let exact = dist2(queries.point(qi), data.point(id as usize)).sqrt();
                assert!(
                    (d - exact).abs() <= f32::EPSILON * exact.max(1.0),
                    "query {qi}: reported distance {d} vs brute-force {exact} (seed {seed})"
                );
            }
        }
    }
    // Monotonic counters: the quiescent pass only grew them.
    let m2 = session.metrics();
    assert!(m2.latency().count >= m.latency().count + queries.len());
    assert!(m2.total_io >= m.total_io);
    m = m2;

    // The mutated database answers a fresh legacy wrapper call with
    // bit-exactly the session's quiescent results.
    let quiet_session: Vec<Vec<(u32, f32)>> = (0..queries.len())
        .map(|qi| quiet_client.query(queries.point(qi)).wait().neighbors)
        .collect();
    drop(session.shutdown());
    let wrapper = svc.serve(&queries, Load::Closed { window: 8 });
    for (qi, quiet) in quiet_session.iter().enumerate() {
        assert_eq!(
            &wrapper.results[qi], quiet,
            "query {qi}: wrapper differs from hand-driven session (seed {seed})"
        );
    }
    assert!(m.latency().count > 0);
    svc.shards().cleanup();
}

/// 2a. Read-only wrapper equivalence: `serve` is bit-exact against a
/// hand-driven session submitting the same queries.
#[test]
fn serve_wrapper_matches_hand_driven_session() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xEAD);
    let data = clustered(700, &mut rng);
    let queries = clustered(40, &mut rng);
    let svc = build_service(
        &data,
        "readeq",
        seed ^ 0xEAD,
        AdmissionControl::UNBOUNDED,
        |_| {},
    );

    let wrapper = svc.serve(&queries, Load::Closed { window: 16 });

    let session = svc.start();
    let client = session.client();
    let tickets: Vec<_> = (0..queries.len())
        .map(|qi| client.query(queries.point(qi)))
        .collect();
    let hand: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let report = session.shutdown();

    assert_eq!(wrapper.results.len(), hand.len());
    for (qi, r) in hand.iter().enumerate() {
        assert_eq!(r.status, OpStatus::Ok);
        assert_eq!(
            wrapper.results[qi], r.neighbors,
            "query {qi}: wrapper differs from hand-driven session (seed {seed})"
        );
        assert!(r.n_io > 0, "served query reported no I/O");
    }
    // Session snapshot accounting covers the hand-driven run.
    assert_eq!(report.latency().count, queries.len());
    assert_eq!(report.shed_queries, 0);
    assert!(report.total_io > 0);
    svc.shards().cleanup();
}

/// 2b. Mixed-stream wrapper equivalence: `serve_mixed` at window 1
/// (sequential) is bit-exact against a hand-driven session applying
/// the same seeded op stream one ticket at a time — including the
/// minted insert ids and the final database state.
#[test]
fn serve_mixed_wrapper_matches_hand_driven_session() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x313ED);
    let data = clustered(600, &mut rng);
    let pool = clustered(120, &mut rng);
    let queries = clustered(30, &mut rng);
    let w = mixed_ops(queries.len(), 0.35, 0.4, data.len(), pool.len(), seed ^ 9);
    assert!(w.num_inserts > 0 && w.num_deletes > 0);

    // Two identically built services (same build seed, separate dirs).
    let svc_a = build_service(
        &data,
        "mixeq-a",
        seed ^ 0x313ED,
        AdmissionControl::UNBOUNDED,
        |_| {},
    );
    let svc_b = build_service(
        &data,
        "mixeq-b",
        seed ^ 0x313ED,
        AdmissionControl::UNBOUNDED,
        |_| {},
    );

    // Window 1: the wrapper applies the stream strictly sequentially,
    // so the hand-driven session can replay it op by op.
    let wrapper = svc_a.serve_mixed(&queries, &pool, &w.ops, Load::Closed { window: 1 });
    assert_eq!(wrapper.shed_writes, 0);
    assert_eq!(wrapper.writes_failed, 0);

    let session = svc_b.start();
    let client = session.client();
    let mut hand: Vec<Vec<(u32, f32)>> = vec![Vec::new(); queries.len()];
    for op in &w.ops {
        match *op {
            Op::Query(qi) => {
                let r = client.query(queries.point(qi)).wait();
                assert_eq!(r.status, OpStatus::Ok);
                hand[qi] = r.neighbors;
            }
            Op::Insert(j) => {
                let r = client.write_blocking(WriteOp::Insert(pool.point(j))).wait();
                assert!(r.applied);
                assert_eq!(
                    r.id,
                    Some((data.len() + j) as u32),
                    "session minted a different id than the wrapper (seed {seed})"
                );
            }
            Op::Delete(g) => {
                let r = client.write_blocking(WriteOp::Delete(g)).wait();
                assert!(r.applied, "delete of live id {g} failed");
            }
        }
    }
    drop(session.shutdown());

    for (qi, by_hand) in hand.iter().enumerate() {
        assert_eq!(
            &wrapper.results[qi], by_hand,
            "query {qi}: wrapper differs from hand-driven session (seed {seed})"
        );
    }
    // The two databases evolved identically: a quiescent pass agrees
    // bit-exactly.
    let quiet_a = svc_a.serve(&queries, Load::Closed { window: 4 });
    let quiet_b = svc_b.serve(&queries, Load::Closed { window: 4 });
    for qi in 0..queries.len() {
        assert_eq!(
            quiet_a.results[qi], quiet_b.results[qi],
            "query {qi}: post-stream databases diverged (seed {seed})"
        );
    }
    svc_a.shards().cleanup();
    svc_b.shards().cleanup();
}

/// 2c. Batch wrapper equivalence: `query_batch` ≡ `Session::query_batch`
/// ≡ hand-submitted unique tickets fanned back out.
#[test]
fn query_batch_wrapper_matches_hand_driven_session() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C);
    let data = clustered(600, &mut rng);
    let base = clustered(24, &mut rng);
    // Duplicate-heavy batch.
    let picks = e2lsh_service::zipf_indices(base.len(), 96, 1.2, seed ^ 11);
    let mut batch = Dataset::with_capacity(DIM, picks.len());
    for &i in &picks {
        batch.push(base.point(i));
    }

    let svc = build_service(
        &data,
        "batcheq",
        seed ^ 0xBA7C,
        AdmissionControl::UNBOUNDED,
        |_| {},
    );
    let wrapper = svc.query_batch(&batch);
    assert!(wrapper.collapsed > 0, "batch must contain duplicates");

    let session = svc.start();
    let session_rep = session.query_batch(&batch);

    // Hand-driven: dedup, submit uniques, fan out.
    let dd = e2lsh_service::dedup_batch(&batch);
    let client = session.client();
    let tickets: Vec<_> = dd
        .uniques
        .iter()
        .map(|&i| client.query(batch.point(i)))
        .collect();
    let uniq: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    drop(session.shutdown());

    assert_eq!(wrapper.results.len(), batch.len());
    assert_eq!(session_rep.results.len(), batch.len());
    assert_eq!(wrapper.unique, session_rep.unique);
    for i in 0..batch.len() {
        let by_hand = &uniq[dd.rep[i]].neighbors;
        assert_eq!(
            &wrapper.results[i], by_hand,
            "query {i}: batch wrapper differs from hand-driven tickets (seed {seed})"
        );
        assert_eq!(
            &session_rep.results[i], by_hand,
            "query {i}: Session::query_batch differs from hand-driven tickets (seed {seed})"
        );
        assert_eq!(wrapper.statuses[i], OpStatus::Ok);
    }
    svc.shards().cleanup();
}

/// 3a. Relaxed write shedding: non-blocking writes may shed under a
/// tiny write budget; shed inserts consume no id (the mint stays
/// gap-free), and a delete of a never-assigned id fails cleanly.
#[test]
fn shed_writes_leave_no_id_gaps() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1D5);
    let data = clustered(600, &mut rng);
    let extra = clustered(200, &mut rng);
    let svc = build_service(
        &data,
        "wshed",
        seed ^ 0x1D5,
        AdmissionControl {
            read: AdmissionBudget::UNBOUNDED,
            write: AdmissionBudget::depth(1),
        },
        |_| {},
    );
    let session = svc.start();
    let client = session.client();

    // Rapid non-blocking inserts against a depth-1 write queue: the
    // writer cannot keep up, so some must shed.
    let tickets: Vec<_> = (0..extra.len())
        .map(|j| client.write(WriteOp::Insert(extra.point(j))))
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let shed = outcomes
        .iter()
        .filter(|r| r.status == OpStatus::Shed)
        .count();
    let applied = outcomes.iter().filter(|r| r.applied).count();
    assert!(shed > 0, "depth-1 write budget never shed (seed {seed})");
    assert!(applied > 0, "every insert shed (seed {seed})");
    for r in &outcomes {
        match r.status {
            OpStatus::Shed => {
                assert!(r.id.is_none(), "shed insert consumed an id");
                assert!(r.overload.expect("shed carries Overload").retry_after > 0.0);
                assert!(!r.applied);
            }
            OpStatus::Ok => assert!(r.id.is_some()),
        }
    }
    // No id gaps: minted ids are exactly base..base+applied (writes on
    // one session are minted in submission order; every admitted
    // insert here applied cleanly).
    let mut ids: Vec<u32> = outcomes.iter().filter_map(|r| r.id).collect();
    ids.sort_unstable();
    let expect: Vec<u32> = (data.len() as u32..(data.len() + applied) as u32).collect();
    assert_eq!(ids, expect, "minted ids have gaps (seed {seed})");

    // The next blocking insert continues the sequence exactly.
    let r = client
        .write_blocking(WriteOp::Insert(extra.point(0)))
        .wait();
    assert_eq!(r.id, Some((data.len() + applied) as u32));
    assert!(r.applied);

    // Deleting an id that was never assigned fails cleanly — no panic,
    // no shed, just `applied == false`.
    let r = client
        .write_blocking(WriteOp::Delete((data.len() + 10_000) as u32))
        .wait();
    assert_eq!(r.status, OpStatus::Ok);
    assert!(!r.applied, "delete of unassigned id reported success");

    let report = session.shutdown();
    assert_eq!(report.shed_writes, shed);
    assert!(report.writes_failed >= 1, "the bad delete counts as failed");
    svc.shards().cleanup();
}

/// 3b. Per-client fairness: one greedy client is capped client-side
/// (its excess sheds with `CLIENT_THROTTLE_SHARD`), while an
/// independent client keeps being served.
#[test]
fn per_client_inflight_cap_sheds_client_side() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA1);
    let data = clustered(600, &mut rng);
    let queries = clustered(16, &mut rng);
    let svc = build_service(
        &data,
        "faircap",
        seed ^ 0xFA1,
        AdmissionControl::UNBOUNDED,
        |c| {
            c.per_client_inflight = 2;
            // Millisecond-scale queries so a burst is guaranteed to
            // overlap the cap.
            c.device = DeviceSpec::SimPerWorker {
                profile: DeviceProfile::HDD,
                num_devices: 2,
            };
        },
    );
    let session = svc.start();
    let greedy = session.client();
    let tickets: Vec<_> = (0..12)
        .map(|i| greedy.query(queries.point(i % queries.len())))
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let client_shed = outcomes
        .iter()
        .filter(|r| {
            r.status == OpStatus::Shed
                && r.overload.is_some_and(|e| e.shard == CLIENT_THROTTLE_SHARD)
        })
        .count();
    assert!(
        client_shed > 0,
        "a 12-query burst against cap 2 never throttled (seed {seed})"
    );
    assert!(
        outcomes.iter().any(|r| r.status == OpStatus::Ok),
        "the cap starved the client entirely"
    );
    // An independent client has its own gauge.
    let polite = session.client();
    let r = polite.query(queries.point(0)).wait();
    assert_eq!(r.status, OpStatus::Ok, "independent client throttled");
    drop(session.shutdown());

    // The legacy wrappers pump through an *uncapped* internal client:
    // the fairness cap protects external clients from each other, not
    // the service from its own harness (regression: a capped pump shed
    // queries the shard budgets had room for).
    let rep = svc.serve(&queries, Load::Closed { window: 8 });
    assert_eq!(
        rep.shed_queries, 0,
        "wrapper shed under its own fairness cap (seed {seed})"
    );
    svc.shards().cleanup();
}

/// 3c. Metrics snapshots: monotonic counters, interval deltas, and the
/// shed-on-closed contract for late submissions.
#[test]
fn metrics_snapshots_and_closed_session() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x3E7);
    let data = clustered(600, &mut rng);
    let queries = clustered(20, &mut rng);
    let extra = clustered(4, &mut rng);
    let svc = build_service(
        &data,
        "metrics",
        seed ^ 0x3E7,
        AdmissionControl::UNBOUNDED,
        |_| {},
    );
    let session = svc.start();
    let client = session.client();

    for qi in 0..10 {
        client.query(queries.point(qi)).wait();
    }
    for j in 0..2 {
        assert!(
            client
                .write_blocking(WriteOp::Insert(extra.point(j)))
                .wait()
                .applied
        );
    }
    let m1 = session.metrics();
    assert_eq!(m1.latency().count, 10);
    assert_eq!(m1.writes_applied, 2);
    assert!(m1.total_io > 0);
    assert!(m1.duration > 0.0);
    assert!(m1.qps() > 0.0);

    for qi in 10..20 {
        client.query(queries.point(qi)).wait();
    }
    let m2 = session.metrics();
    let interval = m2.interval_since(&m1);
    assert_eq!(interval.latency().count, 10, "interval covers the delta");
    assert_eq!(interval.writes_applied, 0);
    assert_eq!(interval.total_io, m2.total_io - m1.total_io);
    assert!(interval.duration <= m2.duration);
    assert_eq!(interval.shards, m2.shards);
    // The interval's histogram is exactly the tail: subtracting the
    // snapshot is bit-identical to a histogram that saw only the
    // second batch of queries.
    assert_eq!(
        interval.read_hist,
        m2.read_hist.minus(&m1.read_hist),
        "interval histogram is the monotonic tail"
    );
    assert_eq!(interval.read_hist.count(), 10);

    let report = session.shutdown();
    assert_eq!(report.latency().count, 20);

    // Submissions after shutdown shed client-side instead of hanging,
    // with an *infinite* retry hint — the terminal state must be
    // distinguishable from transient throttling, or backoff-honoring
    // clients would busy-retry a dead session forever.
    let late = client.query(queries.point(0)).wait();
    assert_eq!(late.status, OpStatus::Shed);
    let e = late.overload.unwrap();
    assert_eq!(e.shard, CLIENT_THROTTLE_SHARD);
    assert!(
        e.retry_after.is_infinite(),
        "closed session must be terminal"
    );
    let late_w = client.write(WriteOp::Insert(extra.point(3))).wait();
    assert_eq!(late_w.status, OpStatus::Shed);
    assert!(late_w.overload.unwrap().retry_after.is_infinite());
    svc.shards().cleanup();
}

/// 3d. A replica fenced and unfenced *mid-session* must be routed
/// around safely (its workers are gone — sending into the dead lane
/// would panic); the unfence takes effect at the next session start.
#[test]
fn unfence_mid_session_routes_around_dead_lane() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD);
    let data = clustered(600, &mut rng);
    let queries = clustered(16, &mut rng);
    let svc = build_service(
        &data,
        "unfence",
        seed ^ 0xDEAD,
        AdmissionControl::UNBOUNDED,
        |c| {
            c.replicas_per_shard = 2;
            c.routing = e2lsh_service::RoutePolicy::RoundRobin;
        },
    );
    let session = svc.start();
    let client = session.client();
    // Fence replica 1 of shard 0 and let its workers finish dying.
    assert!(svc.topology().fence(0, 1));
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Unfence while the session is live: the lane's workers are gone,
    // so the router must keep routing around it instead of panicking
    // on its disconnected queue.
    svc.topology().unfence(0, 1);
    for qi in 0..queries.len() {
        let r = client.query(queries.point(qi)).wait();
        assert_eq!(
            r.status,
            OpStatus::Ok,
            "query shed after unfence (seed {seed})"
        );
        assert!(!r.neighbors.is_empty());
    }
    let report = session.shutdown();
    assert_eq!(
        report.replica_load[0][1], 0,
        "dead lane served queries after mid-session unfence (seed {seed})"
    );
    // The unfence takes effect at the next session start: under
    // round-robin the revived replica takes its full share again.
    let fresh = svc.serve(&queries, Load::Closed { window: 8 });
    assert!(
        fresh.replica_load[0][1] > 0,
        "unfenced replica still idle in a fresh session (seed {seed})"
    );
    assert_eq!(fresh.shed_queries, 0);
    svc.shards().cleanup();
}

/// 3e. Rapid fence/unfence toggling while queries are in flight must
/// never strand a ticket: the per-session fence latch guarantees the
/// `ReplicaDown` rescue fires even when an unfence races the fenced
/// workers' exit handshake (regression: the unlatched handshake
/// checked the *live* flag and could skip the rescue, hanging
/// `wait()` forever).
#[test]
fn rapid_fence_unfence_never_strands_tickets() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF1F);
    let data = clustered(600, &mut rng);
    let queries = clustered(16, &mut rng);
    let svc = build_service(
        &data,
        "fencerace",
        seed ^ 0xF1F,
        AdmissionControl::UNBOUNDED,
        |c| c.replicas_per_shard = 2,
    );
    let session = svc.start();
    let client = session.client();
    std::thread::scope(|scope| {
        let topo = svc.topology();
        let toggler = scope.spawn(move || {
            for _ in 0..40 {
                topo.fence(0, 1);
                std::thread::sleep(std::time::Duration::from_micros(200));
                topo.unfence(0, 1);
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        // Submitting and *waiting* each ticket is the assertion: a
        // stranded ticket hangs the test.
        for i in 0..300 {
            let r = client.query(queries.point(i % queries.len())).wait();
            // Replica 0 stays live, so all-or-nothing fan-out always
            // has a route; nothing should shed, let alone hang.
            assert_eq!(r.status, OpStatus::Ok, "query {i} shed (seed {seed})");
        }
        toggler.join().unwrap();
    });
    drop(session.shutdown());
    svc.shards().cleanup();
}
