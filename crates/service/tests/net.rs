//! Network-tier suite: codec properties, hostile-frame robustness
//! against a live server, ticket orphaning on dead connections,
//! wire/in-process equivalence, and per-tenant budgets.
//!
//! What is checked (seeded; set `E2LSH_TEST_SEED` to reproduce a CI
//! failure locally — the CI `net` job runs this file in release under
//! several seeds):
//!
//! 1. **codec properties** — every request/response frame round-trips
//!    bit-exactly through encode → length-prefixed read → decode, the
//!    reader consumes exactly the frame, and *no prefix of a valid
//!    body* decodes (truncation is always a typed error, never a
//!    misparse);
//! 2. **hostile frames** — wrong version, unknown kind, garbage
//!    payload, oversized length prefix, a truncated body, and a
//!    dimension mismatch each produce a typed error frame or a clean
//!    disconnect; the server never panics, never wedges, and keeps
//!    serving new connections;
//! 3. **ticket orphaning** — a connection killed with a pipeline of
//!    queries in flight leaks nothing: every ticket resolves, the
//!    session registry returns to empty, the orphan counter grows, and
//!    the next connection is served normally;
//! 4. **equivalence** — queries, batches and writes over the socket
//!    return bit-identical results to the in-process session API, and
//!    a clean connection's frame counters balance;
//! 5. **tenant budgets** — one tenant's pipelined burst past its
//!    `per_tenant_inflight` cap sheds with `Overloaded` + finite
//!    `retry_after` *across connections of that tenant*, while a
//!    different tenant on the same server is served.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::net::frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, ErrorCode,
    ReadFrame, Request, Response, HEADER_LEN, MAX_FRAME, PROTOCOL_VERSION,
};
use e2lsh_service::{
    AdmissionControl, DeviceSpec, NetClient, NetServer, NetServerConfig, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const DIM: usize = 8;
const AMPLE: usize = 1_000_000;
const K: usize = 3;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn build_service(
    data: &Dataset,
    tag: &str,
    build_seed: u64,
    mutate: impl FnOnce(&mut ServiceConfig),
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: build_seed,
            dir: std::env::temp_dir().join(format!(
                "e2lsh-net-{}-{tag}-seed{}",
                std::process::id(),
                seed()
            )),
            cache_blocks: 2048,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build");
    let mut config = ServiceConfig {
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: K,
        s_override: Some(AMPLE),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        admission: AdmissionControl::UNBOUNDED,
        ..Default::default()
    };
    mutate(&mut config);
    ShardedService::new(shards, config)
}

// ---------------------------------------------------------------- codec

/// Small-int coordinates: exactly representable, so `PartialEq` on the
/// decoded floats is bit-equality without NaN corner cases.
fn point_from(ints: &[i16]) -> Vec<f32> {
    ints.iter().map(|&v| v as f32 / 8.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request kind round-trips bit-exactly and the
    /// length-prefixed reader consumes exactly the frame.
    #[test]
    fn request_frames_round_trip(
        kind in 0u8..6,
        tenant in 0u16..u16::MAX,
        corr in 0u64..1_000_000,
        coords in proptest::collection::vec(-512i16..512, 0..40),
        dim in 1u32..8,
        id in 0u32..100_000,
    ) {
        let point = point_from(&coords);
        let req = match kind {
            0 => Request::Ping,
            1 => Request::Query { point },
            2 => {
                // A valid batch payload is a multiple of its dimension.
                let n = (point.len() / dim as usize) * dim as usize;
                Request::QueryBatch { dim, points: point[..n].to_vec() }
            }
            3 => Request::Insert { point },
            4 => Request::Delete { id },
            _ => Request::Metrics,
        };
        let mut wire = Vec::new();
        encode_request(tenant, corr, &req, &mut wire);
        let mut cur = std::io::Cursor::new(&wire);
        let body = match read_frame(&mut cur).expect("framed read") {
            ReadFrame::Body(b) => b,
            other => panic!("valid frame read as {other:?}"),
        };
        prop_assert_eq!(cur.position() as usize, wire.len(), "reader left bytes behind");
        prop_assert!(body.len() >= HEADER_LEN && body.len() <= MAX_FRAME);
        let (hdr, back) = decode_request(&body).expect("decode");
        prop_assert_eq!(hdr.version, PROTOCOL_VERSION);
        prop_assert_eq!(hdr.tenant, tenant);
        prop_assert_eq!(hdr.corr, corr);
        prop_assert_eq!(back, req);
    }

    /// Every response kind round-trips bit-exactly, including error
    /// frames with an infinite backoff hint.
    #[test]
    fn response_frames_round_trip(
        kind in 0u8..6,
        tenant in 0u16..u16::MAX,
        corr in 0u64..1_000_000,
        pairs in proptest::collection::vec((0u32..1_000_000, -512i16..512), 0..30),
        sheds in proptest::collection::vec(0u8..2, 0..6),
        applied_bit in 0u8..2,
        id in 0u32..100_000,
        code in 1u8..7,
        backoff_ms in 0u32..10_000,
        terminal in 0u8..2,
    ) {
        let applied = applied_bit == 1;
        let neighbors: Vec<(u32, f32)> =
            pairs.iter().map(|&(g, d)| (g, d as f32 / 8.0)).collect();
        let rsp = match kind {
            0 => Response::Pong,
            1 => Response::Neighbors { neighbors },
            2 => Response::Batch {
                members: sheds
                    .iter()
                    .map(|&s| {
                        if s == 1 {
                            (OpStatus::Shed, Vec::new())
                        } else {
                            (OpStatus::Ok, neighbors.clone())
                        }
                    })
                    .collect(),
            },
            3 => Response::Write { applied, id: applied.then_some(id) },
            4 => Response::Metrics { json: format!("{{\"x\":{id}}}") },
            _ => Response::Error {
                code: match code {
                    1 => ErrorCode::Overloaded,
                    2 => ErrorCode::BadFrame,
                    3 => ErrorCode::BadVersion,
                    4 => ErrorCode::UnknownKind,
                    5 => ErrorCode::Closed,
                    _ => ErrorCode::TooLarge,
                },
                status: OpStatus::Shed,
                retry_after: if terminal == 1 {
                    f64::INFINITY
                } else {
                    backoff_ms as f64 / 1e3
                },
            },
        };
        let mut wire = Vec::new();
        encode_response(tenant, corr, &rsp, &mut wire);
        let mut cur = std::io::Cursor::new(&wire);
        let body = match read_frame(&mut cur).expect("framed read") {
            ReadFrame::Body(b) => b,
            other => panic!("valid frame read as {other:?}"),
        };
        prop_assert_eq!(cur.position() as usize, wire.len());
        let (hdr, back) = decode_response(&body).expect("decode");
        prop_assert_eq!((hdr.tenant, hdr.corr), (tenant, corr));
        prop_assert_eq!(back, rsp);
    }

    /// No strict prefix of a valid body decodes: truncation at every
    /// byte boundary is a typed error, never a silent misparse or a
    /// panic.
    #[test]
    fn truncated_bodies_never_decode(
        coords in proptest::collection::vec(-512i16..512, 1..20),
        corr in 0u64..1_000_000,
    ) {
        let req = Request::Query { point: point_from(&coords) };
        let mut wire = Vec::new();
        encode_request(7, corr, &req, &mut wire);
        let body = &wire[4..];
        for cut in 0..body.len() {
            prop_assert!(
                decode_request(&body[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                body.len()
            );
        }
    }
}

// ------------------------------------------------------------- live server

fn raw_frame(version: u8, kind: u8, tenant: u16, corr: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = vec![version, kind];
    body.extend_from_slice(&tenant.to_le_bytes());
    body.extend_from_slice(&corr.to_le_bytes());
    body.extend_from_slice(payload);
    let mut wire = (body.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&body);
    wire
}

fn open_raw(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s
}

/// Read one frame and expect a typed error; returns (code, corr).
fn expect_error(stream: &mut TcpStream) -> (ErrorCode, u64) {
    match read_frame(stream).expect("read error frame") {
        ReadFrame::Body(b) => {
            let (hdr, rsp) = decode_response(&b).expect("decode error frame");
            match rsp {
                Response::Error { code, .. } => (code, hdr.corr),
                other => panic!("expected an error frame, got {other:?}"),
            }
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}

/// Hostile frames: every malformation gets a typed error or a clean
/// disconnect, and the server keeps serving afterwards.
#[test]
fn hostile_frames_never_wedge_the_server() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0571);
    let data = clustered(600, &mut rng);
    let queries = clustered(4, &mut rng);
    let svc = build_service(&data, "hostile", seed ^ 0x0571, |_| {});
    let session = svc.start();
    let server = NetServer::spawn(&session, NetServerConfig::default()).expect("spawn");
    let addr = server.addr();

    // (a) Wrong version byte: a BadVersion error frame, then the server
    // hangs up (no resync is possible when the peer speaks another
    // protocol).
    let mut s = open_raw(addr);
    s.write_all(&raw_frame(9, 0x01, 3, 77, &[])).unwrap();
    let (code, corr) = expect_error(&mut s);
    assert_eq!(code, ErrorCode::BadVersion);
    assert_eq!(
        corr, 77,
        "error frame must echo the salvaged correlation id"
    );
    assert!(
        matches!(
            read_frame(&mut s).expect("post-error read"),
            ReadFrame::Closed
        ),
        "server must disconnect after a version mismatch"
    );

    // (b) Unknown kind byte: a typed error, and the *same* connection
    // keeps working (framing is still intact).
    let mut s = open_raw(addr);
    s.write_all(&raw_frame(PROTOCOL_VERSION, 0x77, 3, 5, &[]))
        .unwrap();
    let (code, corr) = expect_error(&mut s);
    assert_eq!(code, ErrorCode::UnknownKind);
    assert_eq!(corr, 5);
    let mut ping = Vec::new();
    encode_request(3, 6, &Request::Ping, &mut ping);
    s.write_all(&ping).unwrap();
    match read_frame(&mut s).expect("pong after recovery") {
        ReadFrame::Body(b) => {
            let (hdr, rsp) = decode_response(&b).expect("decode pong");
            assert_eq!(rsp, Response::Pong, "connection unusable after UnknownKind");
            assert_eq!(hdr.corr, 6);
        }
        other => panic!("expected Pong, got {other:?}"),
    }

    // (c) Garbage payload on a known kind: BadFrame, connection intact.
    s.write_all(&raw_frame(
        PROTOCOL_VERSION,
        0x02,
        3,
        8,
        &[0xFF, 0xFF, 0xFF],
    ))
    .unwrap();
    let (code, corr) = expect_error(&mut s);
    assert_eq!(code, ErrorCode::BadFrame);
    assert_eq!(corr, 8);

    // (d) Dimension mismatch: the payload decodes but names a point the
    // service cannot take — BadFrame *before* submission (a hostile
    // frame must not panic a reader on the session's dim assert).
    let mut q = Vec::new();
    encode_request(
        3,
        9,
        &Request::Query {
            point: vec![1.0; DIM + 3],
        },
        &mut q,
    );
    s.write_all(&q).unwrap();
    let (code, corr) = expect_error(&mut s);
    assert_eq!(code, ErrorCode::BadFrame);
    assert_eq!(corr, 9);
    drop(s);

    // (e) Oversized length prefix: TooLarge, then disconnect (the body
    // is unread; the stream cannot be resynchronized).
    let mut s = open_raw(addr);
    s.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    let (code, _) = expect_error(&mut s);
    assert_eq!(code, ErrorCode::TooLarge);
    assert!(
        matches!(
            read_frame(&mut s).expect("post-oversize read"),
            ReadFrame::Closed
        ),
        "server must disconnect after an oversized prefix"
    );

    // (f) Truncated body: claim 100 bytes, send 10, vanish. The reader
    // sees EOF mid-frame and drops the connection as unclean.
    let mut s = open_raw(addr);
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 10]).unwrap();
    drop(s);

    // The server survived all of it: a fresh client is served, the
    // malformations were counted, and the truncated connection
    // eventually counts as dropped.
    let mut c = NetClient::connect(addr, 1).expect("fresh connect");
    c.ping().expect("ping after hostility");
    let r = c.query(queries.point(0)).expect("query after hostility");
    assert_eq!(r.status, OpStatus::Ok);
    assert!(!r.neighbors.is_empty());
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let net = server.metrics().net;
        if net.connections_dropped >= 1 && net.frame_decode_errors >= 5 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "counters never converged: {net:?} (seed {seed})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    drop(c);
    drop(server.shutdown());
    drop(session.shutdown());
    svc.shards().cleanup();
}

/// Ticket orphaning: a connection killed with a pipeline in flight
/// leaks nothing — every ticket resolves, the registry empties, the
/// orphan counter grows, and the next connection is served.
#[test]
fn killed_connection_orphans_tickets_without_leaking() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0DEAD);
    let data = clustered(600, &mut rng);
    let queries = clustered(8, &mut rng);
    let svc = build_service(&data, "orphan", seed ^ 0x0DEAD, |_| {});
    let session = svc.start();
    let server = NetServer::spawn(&session, NetServerConfig::default()).expect("spawn");
    let addr = server.addr();

    // Pipeline a burst and vanish without reading a byte. The unread
    // responses RST the socket, so resolutions after the kill are
    // undeliverable.
    const INFLIGHT: usize = 48;
    let mut doomed = NetClient::connect(addr, 1).expect("connect");
    for i in 0..INFLIGHT {
        doomed
            .send_query(queries.point(i % queries.len()))
            .expect("pipeline");
    }
    drop(doomed);

    // Every ticket resolves and is reclaimed from the session registry
    // — orphaned means undeliverable, never leaked.
    let deadline = Instant::now() + Duration::from_secs(30);
    while session.outstanding_tickets() != 0 {
        assert!(
            Instant::now() < deadline,
            "{} tickets still registered after the kill (seed {seed})",
            session.outstanding_tickets()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The pump noticed the undeliverable responses.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let net = server.metrics().net;
        if net.tickets_orphaned > 0 && net.connections_dropped >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "kill never registered: {net:?} (seed {seed})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The next connection is served normally.
    let mut c = NetClient::connect(addr, 2).expect("connect after kill");
    let r = c.query(queries.point(0)).expect("query after kill");
    assert_eq!(r.status, OpStatus::Ok);
    assert!(!r.neighbors.is_empty());
    drop(c);

    let rep = server.shutdown();
    assert_eq!(rep.net.connections_accepted, 2);
    assert!(rep.net.tickets_orphaned <= INFLIGHT as u64);
    drop(session.shutdown());
    svc.shards().cleanup();
}

/// Wire/in-process equivalence: identical results over the socket
/// and the session API, balanced counters on a clean connection, and a
/// drained shutdown.
#[test]
fn wire_results_match_in_process_session() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0E0);
    let data = clustered(600, &mut rng);
    let queries = clustered(12, &mut rng);
    let extra = clustered(2, &mut rng);
    let svc = build_service(&data, "equiv", seed ^ 0x0E0, |_| {});
    let session = svc.start();
    let local = session.client();
    let server = NetServer::spawn(&session, NetServerConfig::default()).expect("spawn");
    let mut c = NetClient::connect(server.addr(), 42).expect("connect");
    assert_eq!(c.tenant(), 42);

    // Single queries: bit-identical to the in-process client.
    for qi in 0..queries.len() {
        let over_wire = c.query(queries.point(qi)).expect("wire query");
        assert_eq!(over_wire.status, OpStatus::Ok);
        assert!(over_wire.error.is_none() && over_wire.retry_after.is_none());
        let in_process = local.query(queries.point(qi)).wait();
        assert_eq!(
            over_wire.neighbors, in_process.neighbors,
            "query {qi}: wire differs from session (seed {seed})"
        );
    }

    // A batch: one frame, per-member results identical to singles.
    let flat: Vec<f32> = (0..queries.len())
        .flat_map(|qi| queries.point(qi).to_vec())
        .collect();
    let members = c.query_batch(DIM, &flat).expect("wire batch");
    assert_eq!(members.len(), queries.len());
    for (qi, (status, neighbors)) in members.iter().enumerate() {
        assert_eq!(*status, OpStatus::Ok);
        let single = local.query(queries.point(qi)).wait();
        assert_eq!(
            neighbors, &single.neighbors,
            "batch member {qi}: wire differs from session (seed {seed})"
        );
    }

    // Writes: the wire mints the same ids the session would, deletes
    // take effect, and a delete of a never-assigned id fails cleanly
    // (applied = false, not an error frame).
    let ins = c.insert(extra.point(0)).expect("wire insert");
    assert_eq!(ins.status, OpStatus::Ok);
    assert!(ins.applied);
    assert_eq!(
        ins.id,
        Some(data.len() as u32),
        "wire minted a gap (seed {seed})"
    );
    let del = c.delete(data.len() as u32).expect("wire delete");
    assert!(del.applied);
    let bogus = c
        .delete(data.len() as u32 + 10_000)
        .expect("wire bogus delete");
    assert_eq!(bogus.status, OpStatus::Ok);
    assert!(
        !bogus.applied,
        "deleting an unassigned id must fail cleanly"
    );

    // Pipelining: responses match up by correlation id even when
    // collected in reverse.
    let corrs: Vec<u64> = (0..queries.len())
        .map(|qi| c.send_query(queries.point(qi)).expect("pipeline"))
        .collect();
    for (qi, &corr) in corrs.iter().enumerate().rev() {
        let r = c.wait_query(corr).expect("collect");
        assert_eq!(r.status, OpStatus::Ok);
        let single = local.query(queries.point(qi)).wait();
        assert_eq!(
            r.neighbors, single.neighbors,
            "pipelined query {qi} mismatched its correlation id (seed {seed})"
        );
    }

    // The metrics frame is the schema-v3 export with live net counters.
    let json = c.metrics_json().expect("metrics frame");
    assert!(json.contains("\"schema_version\":3"));
    assert!(json.contains("\"frames_in\""));
    c.ping().expect("ping");
    drop(c);

    // A clean connection balances: every frame in answered by exactly
    // one frame out, nothing dropped, nothing orphaned. (Poll: the
    // close is asynchronous.)
    let deadline = Instant::now() + Duration::from_secs(20);
    let net = loop {
        let net = server.metrics().net;
        if net.frames_out == net.frames_in && net.frames_in > 0 {
            break net;
        }
        assert!(
            Instant::now() < deadline,
            "counters never balanced: {net:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(net.connections_accepted, 1);
    assert_eq!(net.connections_dropped, 0);
    assert_eq!(net.tickets_orphaned, 0);
    assert_eq!(net.frame_decode_errors, 0);
    // 12 singles + 1 batch + 3 writes + 12 pipelined + metrics + ping.
    assert_eq!(net.frames_in, 30);

    // Shutdown closes the listener: no new connections after it.
    let addr = server.addr();
    drop(server.shutdown());
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
    drop(session.shutdown());
    svc.shards().cleanup();
}

/// Tenant budgets span connections: two sockets of one tenant share
/// one in-flight cap and shed with `Overloaded` + finite `retry_after`,
/// while another tenant on the same server is served.
#[test]
fn tenant_budget_is_shared_across_connections() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7E4A);
    let data = clustered(600, &mut rng);
    let queries = clustered(8, &mut rng);
    let svc = build_service(&data, "tenant", seed ^ 0x7E4A, |c| {
        // Millisecond-scale queries so a pipelined burst is guaranteed
        // to overlap the cap.
        c.device = DeviceSpec::SimPerWorker {
            profile: DeviceProfile::HDD,
            num_devices: 2,
        };
    });
    let session = svc.start();
    let server = NetServer::spawn(
        &session,
        NetServerConfig {
            per_tenant_inflight: 1,
            ..Default::default()
        },
    )
    .expect("spawn");
    let addr = server.addr();

    // Two connections, same tenant: their combined pipeline of 16
    // against a budget of 1 must shed on both sockets' traffic jointly.
    let mut a = NetClient::connect(addr, 7).expect("connect a");
    let mut b = NetClient::connect(addr, 7).expect("connect b");
    let corrs_a: Vec<u64> = (0..8)
        .map(|i| a.send_query(queries.point(i % queries.len())).unwrap())
        .collect();
    let corrs_b: Vec<u64> = (0..8)
        .map(|i| b.send_query(queries.point(i % queries.len())).unwrap())
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    for (client, corrs) in [(&mut a, &corrs_a), (&mut b, &corrs_b)] {
        for &corr in corrs {
            let r = client.wait_query(corr).expect("collect");
            match r.status {
                OpStatus::Ok => ok += 1,
                OpStatus::Shed => {
                    shed += 1;
                    assert_eq!(r.error, Some(ErrorCode::Overloaded));
                    let hint = r.retry_after.expect("shed carries retry_after");
                    assert!(
                        hint > 0.0 && hint.is_finite(),
                        "throttle hint must be a finite backoff, got {hint}"
                    );
                    assert!(r.neighbors.is_empty());
                }
            }
        }
    }
    assert!(ok > 0, "budget 1 starved the tenant entirely (seed {seed})");
    assert!(
        shed > 0,
        "16 pipelined queries against budget 1 never shed (seed {seed})"
    );

    // A different tenant has its own budget: served while tenant 7 is
    // saturating its cap.
    let mut other = NetClient::connect(addr, 8).expect("connect other");
    let r = other.query(queries.point(0)).expect("other tenant query");
    assert_eq!(
        r.status,
        OpStatus::Ok,
        "well-behaved tenant shed by a neighbor's budget (seed {seed})"
    );

    drop((a, b, other));
    drop(server.shutdown());
    drop(session.shutdown());
    svc.shards().cleanup();
}
