//! Oracle-checked consistency of the mutable service: a seeded
//! interleaving of inserts, deletes and queries runs through
//! `ShardedService::serve_mixed` while a single-threaded brute-force
//! oracle replays the same op stream over a mirror of the database.
//!
//! Checked invariants:
//!
//! 1. **deleted ids never appear after their delete completes** — every
//!    query result of round `k` is free of ids deleted in rounds `< k`,
//!    and the final (quiescent) pass is free of *all* deleted ids;
//! 2. **inserted objects become findable** — the final pass's mean
//!    recall@k against the brute-force oracle over the live set matches
//!    the recall of a *statically rebuilt* index over the same live set
//!    within tolerance (the static build is the paper's regime, so the
//!    mutable path may not silently lose accuracy);
//! 3. write latencies, failure counts and cache invalidation counters
//!    are coherent with the op stream.
//!
//! Seeded: set `E2LSH_TEST_SEED` to reproduce a CI failure locally
//! (the CI stress job runs this test in release under several seeds).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    dedup_batch, mixed_ops_resuming, zipf_indices, DeviceSpec, Load, Op, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

const AMPLE: usize = 1_000_000;
const K: usize = 3;
const N0: usize = 600;
const POOL: usize = 160;
const QUERIES: usize = 24;
const ROUNDS: usize = 3;
const DIM: usize = 8;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn clustered(n: usize, rng: &mut ChaCha8Rng, centers: &[Vec<f32>]) -> Dataset {
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

/// Single-threaded brute-force oracle over the mirrored database.
struct Oracle {
    /// Global id → coordinates (grows with inserts, never shrinks).
    all: Dataset,
    /// Global id → alive?
    live: Vec<bool>,
}

impl Oracle {
    fn topk(&self, q: &[f32], k: usize) -> Vec<(u32, f32)> {
        let mut best: Vec<(u32, f32)> = Vec::new();
        for id in 0..self.all.len() {
            if !self.live[id] {
                continue;
            }
            let d = dist2(q, self.all.point(id)).sqrt();
            best.push((id as u32, d));
        }
        best.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        best.truncate(k);
        best
    }
}

/// Mean recall@k of `results` against the oracle's ground truth.
fn mean_recall(results: &[Vec<(u32, f32)>], queries: &Dataset, oracle: &Oracle) -> f64 {
    let mut acc = 0.0;
    for (qi, res) in results.iter().enumerate() {
        let truth: HashSet<u32> = oracle
            .topk(queries.point(qi), K)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        if truth.is_empty() {
            acc += 1.0;
            continue;
        }
        let hit = res.iter().filter(|(id, _)| truth.contains(id)).count();
        acc += hit as f64 / truth.len() as f64;
    }
    acc / results.len().max(1) as f64
}

fn shard_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "e2lsh-mutable-eq-{}-{name}-seed{}",
        std::process::id(),
        seed()
    ))
}

fn service_over(data: &Dataset, dir_tag: &str, build_seed: u64) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: build_seed,
            dir: shard_dir(dir_tag),
            cache_blocks: 4096,
            ..Default::default()
        },
        params_for,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 8,
            k: K,
            s_override: Some(AMPLE),
            device: DeviceSpec::SimPerWorker {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            ..Default::default()
        },
    )
}

#[test]
fn mutable_service_matches_oracle() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let data = clustered(N0, &mut rng, &centers);
    let pool = clustered(POOL, &mut rng, &centers);
    let queries = clustered(QUERIES, &mut rng, &centers);

    let svc = service_over(&data, "mut", seed ^ 0x5EED);

    // Mirror of the database the oracle replays ops over.
    let mut oracle = Oracle {
        all: data.clone(),
        live: vec![true; N0],
    };
    let mut live_ids: Vec<u32> = (0..N0 as u32).collect();
    let mut deleted_before_round: HashSet<u32> = HashSet::new();
    let mut next_id = N0 as u32;
    let mut pool_off = 0usize;
    let mut total_invalidations = 0u64;
    let mut total_writes = 0usize;

    for round in 0..ROUNDS {
        let w = mixed_ops_resuming(
            QUERIES,
            0.3,
            0.4,
            live_ids.clone(),
            next_id,
            POOL - pool_off,
            seed.wrapping_mul(1000).wrapping_add(round as u64),
        );
        // This round's insert pool: the next chunk of the master pool.
        let mut round_pool = Dataset::with_capacity(DIM, POOL - pool_off);
        for i in pool_off..POOL {
            round_pool.push(pool.point(i));
        }

        let rep = svc.serve_mixed(&queries, &round_pool, &w.ops, Load::Closed { window: 8 });

        assert_eq!(rep.writes_failed, 0, "round {round}: writes failed");
        assert_eq!(
            rep.write_latencies.len(),
            w.num_inserts + w.num_deletes,
            "round {round}: every write reports a latency"
        );
        assert!(rep.write_latencies.iter().all(|&l| l >= 0.0));
        assert_eq!(rep.results.len(), QUERIES);
        // Ids deleted in *earlier* rounds (strictly happened-before this
        // round's queries) must never appear. Ids deleted concurrently
        // within this round may — consistency is claimed only after the
        // delete completes.
        for (qi, res) in rep.results.iter().enumerate() {
            for &(id, _) in res {
                assert!(
                    !deleted_before_round.contains(&id),
                    "round {round} query {qi}: returned id {id} deleted in an earlier round"
                );
                assert!((id as usize) < next_id as usize + w.num_inserts);
            }
        }
        total_invalidations += rep.device.cache_invalidations;
        total_writes += w.num_inserts + w.num_deletes;

        // Replay the ops into the oracle mirror.
        let mut inserted_this_round = 0usize;
        for op in &w.ops {
            match *op {
                Op::Query(_) => {}
                Op::Insert(j) => {
                    oracle.all.push(round_pool.point(j));
                    oracle.live.push(true);
                    live_ids.push(next_id + j as u32);
                    inserted_this_round += 1;
                }
                Op::Delete(id) => {
                    oracle.live[id as usize] = false;
                    live_ids.retain(|&g| g != id);
                    deleted_before_round.insert(id);
                }
            }
        }
        assert_eq!(inserted_this_round, w.num_inserts);
        next_id += w.num_inserts as u32;
        pool_off += w.num_inserts;
    }

    assert!(total_writes > 0, "the stream must actually mutate");
    assert!(
        total_invalidations > 0,
        "writes against a cached shard must invalidate blocks"
    );

    // Quiescent read-only pass: no concurrent writes, full consistency.
    let final_rep = svc.serve(&queries, Load::Closed { window: 8 });
    let live_set: HashSet<u32> = live_ids.iter().copied().collect();
    for (qi, res) in final_rep.results.iter().enumerate() {
        for &(id, _) in res {
            assert!(
                live_set.contains(&id),
                "final query {qi}: id {id} is deleted or was never inserted"
            );
        }
    }

    // Recall tolerance vs a statically rebuilt index over the live set.
    let mut live_sorted: Vec<u32> = live_ids.clone();
    live_sorted.sort_unstable();
    let mut live_data = Dataset::with_capacity(DIM, live_sorted.len());
    for &g in &live_sorted {
        live_data.push(oracle.all.point(g as usize));
    }
    let static_svc = service_over(&live_data, "static", seed ^ 0xBA5E);
    let static_rep = static_svc.serve(&queries, Load::Closed { window: 8 });
    // Map static ids (positions in live_sorted) back to global ids.
    let static_results: Vec<Vec<(u32, f32)>> = static_rep
        .results
        .iter()
        .map(|r| {
            r.iter()
                .map(|&(id, d)| (live_sorted[id as usize], d))
                .collect()
        })
        .collect();

    let recall_mutable = mean_recall(&final_rep.results, &queries, &oracle);
    let recall_static = mean_recall(&static_results, &queries, &oracle);
    assert!(
        recall_mutable + 0.15 >= recall_static,
        "mutable recall {recall_mutable:.3} trails static rebuild {recall_static:.3} \
         beyond tolerance (seed {seed})"
    );
    // With an ample candidate budget both should be close to exact.
    assert!(
        recall_mutable > 0.7,
        "mutable recall {recall_mutable:.3} suspiciously low (seed {seed})"
    );

    static_svc.shards().cleanup();
    svc.shards().cleanup();
}

/// Batch-equivalence oracle: `query_batch` (dedup on, duplicate-heavy
/// batches) must match issuing the same queries one-by-one — while the
/// service mutates underneath, and exactly at quiescence.
///
/// Per round, a duplicate-heavy batch is served concurrently with a
/// `serve_mixed` round of inserts/deletes on another thread. During
/// concurrency the one-by-one reference is not deterministic, so the
/// concurrent check is invariant-based: duplicates byte-identical, no
/// id deleted in an *earlier* round served, all ids valid. After each
/// round (quiescent), the batch results must equal per-query `serve`
/// results bit-for-bit, and at the end recall is checked against the
/// brute-force oracle over the live set.
#[test]
fn query_batch_matches_one_by_one_under_writes() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let data = clustered(N0, &mut rng, &centers);
    let pool = clustered(POOL, &mut rng, &centers);
    let base_queries = clustered(QUERIES, &mut rng, &centers);
    // Duplicate-heavy batch: 3× the base size over Zipf-hot picks.
    let picks = zipf_indices(base_queries.len(), 3 * QUERIES, 1.2, seed ^ 5);
    let mut batch = Dataset::with_capacity(DIM, picks.len());
    for &i in &picks {
        batch.push(base_queries.point(i));
    }
    let dd = dedup_batch(&batch);
    assert!(dd.uniques.len() < batch.len(), "batch must have duplicates");

    let svc = service_over(&data, "batch", seed ^ 0xBA7C);

    let mut oracle = Oracle {
        all: data.clone(),
        live: vec![true; N0],
    };
    let mut live_ids: Vec<u32> = (0..N0 as u32).collect();
    let mut deleted_before_round: HashSet<u32> = HashSet::new();
    let mut next_id = N0 as u32;
    let mut pool_off = 0usize;

    for round in 0..ROUNDS {
        let w = mixed_ops_resuming(
            QUERIES,
            0.3,
            0.4,
            live_ids.clone(),
            next_id,
            POOL - pool_off,
            seed.wrapping_mul(77).wrapping_add(round as u64),
        );
        let mut round_pool = Dataset::with_capacity(DIM, POOL - pool_off);
        for i in pool_off..POOL {
            round_pool.push(pool.point(i));
        }

        // Concurrent regime: the mixed round mutates while the batch
        // serves on this thread.
        let mut batch_rep = None;
        let mut mixed_rep = None;
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                svc.serve_mixed(
                    &base_queries,
                    &round_pool,
                    &w.ops,
                    Load::Closed { window: 8 },
                )
            });
            batch_rep = Some(svc.query_batch(&batch));
            mixed_rep = Some(handle.join().expect("mixed round"));
        });
        let batch_rep = batch_rep.unwrap();
        let mixed_rep = mixed_rep.unwrap();
        assert_eq!(mixed_rep.writes_failed, 0, "round {round}: writes failed");

        // Invariant checks on the concurrent batch.
        assert_eq!(batch_rep.results.len(), batch.len());
        assert_eq!(batch_rep.shed, 0, "unbounded admission must not shed");
        assert!(batch_rep.statuses.iter().all(|&s| s == OpStatus::Ok));
        assert_eq!(batch_rep.unique, dd.uniques.len());
        assert_eq!(batch_rep.collapsed, batch.len() - dd.uniques.len());
        let id_limit = next_id as usize + w.num_inserts;
        for (qi, res) in batch_rep.results.iter().enumerate() {
            for &(id, _) in res {
                assert!(
                    !deleted_before_round.contains(&id),
                    "round {round} batch query {qi}: id {id} deleted in an earlier round"
                );
                assert!(
                    (id as usize) < id_limit,
                    "round {round}: id {id} from the future"
                );
            }
        }
        for i in 0..batch.len() {
            assert_eq!(
                batch_rep.results[i], batch_rep.results[dd.uniques[dd.rep[i]]],
                "round {round}: duplicate {i} diverged from its representative"
            );
        }

        // Replay ops into the oracle mirror.
        for op in &w.ops {
            match *op {
                Op::Query(_) => {}
                Op::Insert(j) => {
                    oracle.all.push(round_pool.point(j));
                    oracle.live.push(true);
                    live_ids.push(next_id + j as u32);
                }
                Op::Delete(id) => {
                    oracle.live[id as usize] = false;
                    live_ids.retain(|&g| g != id);
                    deleted_before_round.insert(id);
                }
            }
        }
        next_id += w.num_inserts as u32;
        pool_off += w.num_inserts;

        // Quiescent regime: batch == one-by-one, bit for bit.
        let quiet_batch = svc.query_batch(&batch);
        let one_by_one = svc.serve(&batch, Load::Closed { window: 8 });
        for i in 0..batch.len() {
            assert_eq!(
                quiet_batch.results[i], one_by_one.results[i],
                "round {round} query {i}: quiescent batch diverges from one-by-one"
            );
        }
        // Dedup saves engine probes on the duplicate-heavy batch (the
        // shared cache makes per-query I/O cheaper but dedup skips the
        // engine entirely for duplicates).
        assert!(
            quiet_batch.total_io <= one_by_one.total_io,
            "round {round}: dedup issued more probes than per-query serving"
        );
    }

    // Final recall check: quiescent batch results against the
    // brute-force oracle over the live set (per unique query — the
    // duplicates are clones by construction).
    let final_rep = svc.query_batch(&batch);
    let live_set: HashSet<u32> = live_ids.iter().copied().collect();
    for (qi, res) in final_rep.results.iter().enumerate() {
        for &(id, _) in res {
            assert!(
                live_set.contains(&id),
                "final batch query {qi}: id {id} is deleted or was never inserted"
            );
        }
    }
    let unique_results: Vec<Vec<(u32, f32)>> = dd
        .uniques
        .iter()
        .map(|&i| final_rep.results[i].clone())
        .collect();
    let mut unique_queries = Dataset::with_capacity(DIM, dd.uniques.len());
    for &i in &dd.uniques {
        unique_queries.push(batch.point(i));
    }
    let recall = mean_recall(&unique_results, &unique_queries, &oracle);
    assert!(
        recall > 0.7,
        "batched recall {recall:.3} suspiciously low (seed {seed})"
    );

    svc.shards().cleanup();
}
