//! Property tests for replica routing: the selection cores
//! (`round_robin_pick` / `power_of_two_pick` — the exact functions the
//! live router calls) are model-checked against a discrete-time queue
//! simulator, in the style of `batch_dedup.rs`'s gated-queue model.
//!
//! Checked:
//!
//! * power-of-two-choices always returns one of its two samples, and
//!   never the deeper of the two;
//! * round-robin spreads counts evenly (≤ 1 apart) over any live set;
//! * **the load-awareness payoff**: on a replica group with one slow
//!   replica (drains at half the speed of its siblings) under a
//!   sustainable aggregate load, round-robin's slow-replica backlog
//!   grows linearly with the arrival count while power-of-two-choices
//!   keeps every queue bounded — the model-level statement of "route by
//!   load, not by turn", and the reason the `serve_replicas` bench's
//!   p99 favors p2c under skew;
//! * the integration-level agreement: every routing policy returns the
//!   same merged results (replication and routing are performance
//!   features, never accuracy features), with broadcast's duplicate
//!   partials deduplicated at merge.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::router::{power_of_two_pick, round_robin_pick, splitmix64};
use e2lsh_service::{
    DeviceSpec, Load, RoutePolicy, ServiceConfig, ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use proptest::prelude::*;

// ---------------------------------------------------------- pure cores

proptest! {
    #[test]
    fn p2c_returns_a_sample_and_never_the_deeper(
        depths in proptest::collection::vec(0usize..100, 2..8),
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let live: Vec<usize> = (0..depths.len()).collect();
        let pick = power_of_two_pick(&live, |r| depths[r], a, b);
        let sa = live[(a % live.len() as u64) as usize];
        let sb = live[(b % live.len() as u64) as usize];
        prop_assert!(pick == sa || pick == sb);
        prop_assert!(depths[pick] <= depths[sa].min(depths[sb]));
    }

    #[test]
    fn round_robin_counts_stay_within_one(
        live in proptest::collection::vec(0usize..16, 1..6),
        turns in 1usize..200,
    ) {
        // A live set is a set: dedup preserving order.
        let mut seen = std::collections::HashSet::new();
        let live: Vec<usize> = live.into_iter().filter(|r| seen.insert(*r)).collect();
        let mut counts = std::collections::HashMap::new();
        for c in 0..turns {
            *counts.entry(round_robin_pick(&live, c)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = live
            .iter()
            .map(|r| counts.get(r).copied().unwrap_or(0))
            .min()
            .unwrap();
        prop_assert!(max - min <= 1, "round robin drifted: {max} vs {min}");
    }
}

// ------------------------------------------- discrete-time queue model

/// One simulated replica: a queue depth and a drain period (one job
/// leaves every `period` ticks).
struct SimReplica {
    depth: usize,
    period: usize,
}

/// Drive `ticks` arrivals (one per tick) through a replica group with
/// the given drain periods, routing with `pick`. Returns the maximum
/// queue depth ever observed per replica.
fn simulate(
    periods: &[usize],
    ticks: usize,
    mut pick: impl FnMut(&[usize], &dyn Fn(usize) -> usize, usize) -> usize,
) -> Vec<usize> {
    let mut reps: Vec<SimReplica> = periods
        .iter()
        .map(|&period| SimReplica { depth: 0, period })
        .collect();
    let live: Vec<usize> = (0..reps.len()).collect();
    let mut peaks = vec![0usize; reps.len()];
    for t in 0..ticks {
        let depths: Vec<usize> = reps.iter().map(|r| r.depth).collect();
        let depth_of = |r: usize| depths[r];
        let r = pick(&live, &depth_of, t);
        reps[r].depth += 1;
        for (i, rep) in reps.iter_mut().enumerate() {
            if rep.depth > 0 && t % rep.period == 0 {
                rep.depth -= 1;
            }
            peaks[i] = peaks[i].max(rep.depth);
        }
    }
    peaks
}

proptest! {
    /// One replica drains at half speed. Aggregate capacity still
    /// exceeds the arrival rate, so a load-aware router keeps every
    /// queue bounded — while round-robin, blind to backlog, ships the
    /// slow replica a full 1/R share and its queue grows with the run
    /// length.
    #[test]
    fn p2c_bounds_backlog_where_round_robin_diverges(seed in 0u64..32) {
        // 3 replicas: two drain 1 job / 2 ticks, one 1 job / 4 ticks.
        // Aggregate drain 1.25/tick > 1 arrival/tick; rr hands the slow
        // replica 1/3 > 1/4 — unstable for it.
        let periods = [2usize, 2, 4];
        const TICKS: usize = 4000;

        let rr_peaks = simulate(&periods, TICKS, |live, _depths, t| {
            round_robin_pick(live, t)
        });
        let p2c_peaks = simulate(&periods, TICKS, |live, depths, t| {
            let a = splitmix64(seed ^ (2 * t as u64));
            let b = splitmix64(seed ^ (2 * t as u64 + 1));
            power_of_two_pick(live, depths, a, b)
        });

        // Round-robin diverges on the slow replica: backlog grows at
        // (1/3 − 1/4) per tick ≈ TICKS/12 by the end.
        prop_assert!(
            rr_peaks[2] > TICKS / 20,
            "rr slow-replica backlog only {} after {TICKS} ticks",
            rr_peaks[2]
        );
        // Power-of-two keeps *every* queue bounded (generous constant —
        // the equilibrium depth differential is O(1) here).
        let p2c_max = *p2c_peaks.iter().max().unwrap();
        prop_assert!(
            p2c_max < 64,
            "p2c backlog {p2c_max} not bounded (seed {seed})"
        );
        prop_assert!(p2c_max < rr_peaks[2], "load-awareness lost to round-robin");
    }
}

// -------------------------------------- integration: policies agree

fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..6)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

/// Every routing policy (and every replica count) returns identical
/// merged results: the reference is the R=1 service, which PR-1's
/// equivalence suite pins to the batch engine.
#[test]
fn routing_policies_and_replication_preserve_results() {
    const AMPLE: usize = 1_000_000;
    let data = clustered(800, 10, 41);
    let queries = clustered(40, 10, 42);

    let build = |tag: &str| {
        ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: 2,
                seed: 7,
                dir: std::env::temp_dir().join(format!(
                    "e2lsh-replica-routing-{}-{tag}",
                    std::process::id()
                )),
                cache_blocks: 1024,
                ..Default::default()
            },
            |local| {
                E2lshParams::derive(
                    local.len(),
                    2.0,
                    4.0,
                    1.0,
                    local.max_abs_coord(),
                    local.dim(),
                )
            },
        )
        .expect("shard build")
    };
    let config = |replicas: usize, routing: RoutePolicy| ServiceConfig {
        replicas_per_shard: replicas,
        routing,
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: 3,
        s_override: Some(AMPLE),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        ..Default::default()
    };

    let reference = ShardedService::new(build("ref"), config(1, RoutePolicy::RoundRobin));
    let expect = reference.serve(&queries, Load::Closed { window: 8 });
    reference.shards().cleanup();

    for (routing, tag) in [
        (RoutePolicy::PowerOfTwoChoices, "p2c"),
        (RoutePolicy::RoundRobin, "rr"),
        (RoutePolicy::Broadcast, "bcast"),
    ] {
        let svc = ShardedService::new(build(tag), config(3, routing));
        let rep = svc.serve(&queries, Load::Closed { window: 8 });
        assert_eq!(rep.replicas, 3);
        assert_eq!(rep.shed_queries, 0);
        for qi in 0..queries.len() {
            assert_eq!(
                rep.results[qi], expect.results[qi],
                "{tag}: query {qi} diverged from the single-replica reference"
            );
        }
        // Load accounting: single-route policies serve each query once
        // per shard; broadcast serves it on every replica.
        let total_served: u64 = rep.replica_load.iter().flatten().sum();
        let per_query_partials = match routing {
            RoutePolicy::Broadcast => rep.shards * rep.replicas,
            _ => rep.shards,
        };
        assert_eq!(
            total_served as usize,
            queries.len() * per_query_partials,
            "{tag}: served-count accounting"
        );
        // Single-route policies must actually spread load over replicas.
        if routing != RoutePolicy::Broadcast {
            let used: usize = rep
                .replica_load
                .iter()
                .flatten()
                .filter(|&&l| l > 0)
                .count();
            assert!(used > rep.shards, "{tag}: only one replica per shard used");
            assert!(rep.replica_imbalance() >= 1.0);
        }
        svc.shards().cleanup();
    }
}
