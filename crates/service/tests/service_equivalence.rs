//! The sharded, multi-threaded service must return exactly the results
//! of the single-threaded batch engine on the deterministic simulated
//! device: sharding + worker pools + caching are performance features,
//! never accuracy features.
//!
//! The candidate budget is left effectively unbounded in these tests so
//! results are independent of I/O completion order (with a binding
//! budget, *which* candidates are examined before the budget runs out
//! depends on timing).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    skewed_queries, DeviceSpec, Load, ServiceConfig, ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::build::{build_index, BuildConfig};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, EngineConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 4242;
const AMPLE: usize = 1_000_000;

fn make_dataset(n: usize, dim: usize, nq: usize) -> (Dataset, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut gen_points = |count: usize| {
        let mut ds = Dataset::with_capacity(dim, count);
        let mut p = vec![0.0f32; dim];
        for _ in 0..count {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (v, &cv) in p.iter_mut().zip(c) {
                *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
            }
            ds.push(&p);
        }
        ds
    };
    (gen_points(n), gen_points(nq))
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim())
}

fn shard_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("e2lsh-service-test-{}-{name}", std::process::id()))
}

/// Reference results: batch engine over one index per shard, merged.
fn reference_results(shards: &ShardSet, queries: &Dataset, k: usize) -> Vec<Vec<(u32, f32)>> {
    let mut merged: Vec<Vec<(u32, f32)>> = vec![Vec::new(); queries.len()];
    for shard in shards.shards() {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&shard.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, k);
        cfg.s_override = Some(AMPLE);
        let data = shard.data.read().unwrap();
        let report = run_queries(&index, &data, queries, &cfg, &mut dev);
        for (qi, out) in report.outcomes.iter().enumerate() {
            merged[qi].extend(
                out.neighbors
                    .iter()
                    .map(|&(id, d)| (shard.to_global(id), d)),
            );
        }
    }
    for m in &mut merged {
        m.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        m.truncate(k);
    }
    merged
}

fn service_config(workers: usize, k: usize, device: DeviceSpec) -> ServiceConfig {
    ServiceConfig {
        workers_per_replica: workers,
        contexts_per_worker: 8,
        k,
        s_override: Some(AMPLE),
        device,
        ..Default::default()
    }
}

#[test]
fn single_shard_service_matches_run_queries() {
    let (data, queries) = make_dataset(1000, 12, 20);
    let k = 3;

    // Plain single index + batch engine.
    let dir = shard_dir("single");
    std::fs::create_dir_all(&dir).unwrap();
    let plain_path = dir.join("plain.idx");
    let params = params_for(&data);
    let cfg = BuildConfig {
        seed: SEED,
        ..Default::default()
    };
    build_index(&data, &params, &cfg, &plain_path).unwrap();
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&plain_path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let mut ecfg = EngineConfig::simulated(Interface::SPDK, k);
    ecfg.s_override = Some(AMPLE);
    let batch = run_queries(&index, &data, &queries, &ecfg, &mut dev);

    // Sharded service, one shard (same seed → identical index), several
    // workers.
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 1,
            seed: SEED,
            dir: dir.clone(),
            cache_blocks: 0,
            ..Default::default()
        },
        params_for,
    )
    .unwrap();
    let svc = ShardedService::new(
        shards,
        service_config(
            3,
            k,
            DeviceSpec::SimPerWorker {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
        ),
    );
    let report = svc.serve(&queries, Load::Closed { window: 16 });

    assert_eq!(report.results.len(), queries.len());
    for qi in 0..queries.len() {
        assert_eq!(
            report.results[qi], batch.outcomes[qi].neighbors,
            "query {qi}: service differs from run_queries"
        );
    }
    assert!(report.qps() > 0.0);
    assert!(report.latencies.iter().all(|&l| l >= 0.0));
    svc.shards().cleanup();
    std::fs::remove_file(&plain_path).ok();
}

#[test]
fn multi_shard_service_equals_merged_per_shard_batches() {
    let (data, queries) = make_dataset(1200, 10, 16);
    let k = 5;
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 4,
            seed: 7,
            dir: shard_dir("multi"),
            cache_blocks: 0,
            ..Default::default()
        },
        params_for,
    )
    .unwrap();
    assert_eq!(shards.num_shards(), 4);
    let expect = reference_results(&shards, &queries, k);

    let svc = ShardedService::new(
        shards,
        service_config(
            2,
            k,
            DeviceSpec::SimPerWorker {
                profile: DeviceProfile::CSSD,
                num_devices: 1,
            },
        ),
    );
    let report = svc.serve(&queries, Load::Closed { window: 8 });
    for (qi, want) in expect.iter().enumerate() {
        assert_eq!(
            &report.results[qi], want,
            "query {qi}: sharded service differs from merged batches"
        );
    }
    // The session API is the same engine: a hand-driven session returns
    // the reference results bit-exactly too.
    let session = svc.start();
    let client = session.client();
    let tickets: Vec<_> = (0..queries.len())
        .map(|qi| client.query(queries.point(qi)))
        .collect();
    for (qi, t) in tickets.into_iter().enumerate() {
        let r = t.wait();
        assert_eq!(
            &r.neighbors, &expect[qi],
            "query {qi}: hand-driven session differs from merged batches"
        );
    }
    drop(session.shutdown());
    // Global ids must be valid and unique.
    for r in &report.results {
        let mut ids: Vec<u32> = r.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.len());
        assert!(ids.iter().all(|&id| (id as usize) < data.len()));
    }
    svc.shards().cleanup();
}

#[test]
fn results_identical_with_cache_on_and_off_and_hits_counted() {
    let (data, base_queries) = make_dataset(900, 10, 12);
    let k = 2;
    // Skewed stream: hot queries repeat, so the cache must get hits.
    let queries = skewed_queries(&base_queries, 120, 1.1, 5);

    let run = |cache_blocks: usize, tag: &str| {
        let shards = ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: 2,
                seed: 21,
                dir: shard_dir(tag),
                cache_blocks,
                ..Default::default()
            },
            params_for,
        )
        .unwrap();
        let svc = ShardedService::new(
            shards,
            service_config(
                2,
                k,
                DeviceSpec::SimPerWorker {
                    profile: DeviceProfile::ESSD,
                    num_devices: 1,
                },
            ),
        );
        let report = svc.serve(&queries, Load::Closed { window: 16 });
        svc.shards().cleanup();
        report
    };

    let cold = run(0, "nocache");
    let warm = run(4096, "cache");
    assert_eq!(cold.results.len(), warm.results.len());
    for qi in 0..cold.results.len() {
        assert_eq!(
            cold.results[qi], warm.results[qi],
            "query {qi}: cache changed results"
        );
    }
    assert_eq!(cold.device.cache_hits + cold.device.cache_misses, 0);
    assert!(
        warm.device.cache_hits > 0,
        "skewed stream produced no cache hits"
    );
    assert!(warm.device.cache_hit_rate() > 0.0);
    // A cache can only remove device I/Os, never add them.
    assert!(warm.device.completed <= cold.device.completed + warm.device.cache_hits);
}

#[test]
fn open_loop_serves_every_query_with_sane_latencies() {
    let (data, queries) = make_dataset(800, 8, 40);
    let k = 1;
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 3,
            dir: shard_dir("open"),
            cache_blocks: 1024,
            ..Default::default()
        },
        params_for,
    )
    .unwrap();
    let expect = reference_results(&shards, &queries, k);
    let svc = ShardedService::new(
        shards,
        service_config(
            2,
            k,
            DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
        ),
    );
    let report = svc.serve(
        &queries,
        Load::Open {
            rate_qps: 2000.0,
            seed: 11,
        },
    );
    assert_eq!(report.results.len(), queries.len());
    for (qi, want) in expect.iter().enumerate() {
        assert_eq!(&report.results[qi], want, "query {qi}");
    }
    let lat = report.latency();
    assert!(lat.count == queries.len());
    assert!(report.latencies.iter().all(|&l| l >= 0.0));
    assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99 && lat.p99 <= lat.max);
    assert!(report.duration > 0.0 && report.qps() > 0.0);
    svc.shards().cleanup();
}
