//! Saturation regression: an open-loop arrival rate at 2× measured
//! capacity must *degrade into explicit load shedding*, not into
//! unbounded queues and runaway p99.
//!
//! The suite measures the service's closed-loop capacity, then offers
//! twice that rate open-loop under a finite [`AdmissionBudget`] and
//! asserts the admission-control contract:
//!
//! 1. per-shard queue depth never exceeds the configured bound
//!    (`peak_queue_depth ≤ max_depth`);
//! 2. the excess load is shed with the typed `Overload` error — shed
//!    rate is nonzero and every shed query has empty results and
//!    `OpStatus::Shed`;
//! 3. accepted-request p99 stays finite and *bounded by the queue*:
//!    with at most `max_depth` ops waiting ahead of an accepted op, its
//!    queue wait is capped near `max_depth / capacity` — the old
//!    unbounded code's p99 grows with the stream length instead;
//! 4. the run terminates (the old code simply hung deeper and deeper —
//!    completing the collector loop *is* the test).
//!
//! Seeded: set `E2LSH_TEST_SEED` to reproduce a CI failure locally.
//! The full-size sweep (several rates through and past capacity) runs
//! only with `E2LSH_STRESS=1` (CI's saturation job, release); the
//! default `cargo test -q` runs a scaled-down single 2×-capacity point.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    skewed_queries, AdmissionBudget, AdmissionControl, DeviceSpec, Load, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 8;
const QUEUE_BOUND: usize = 48;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn stress() -> bool {
    std::env::var("E2LSH_STRESS").as_deref() == Ok("1")
}

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn build_service(data: &Dataset, budget: impl Into<AdmissionControl>, seed: u64) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed,
            dir: std::env::temp_dir().join(format!(
                "e2lsh-saturation-{}-seed{}",
                std::process::id(),
                seed
            )),
            cache_blocks: 2048,
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 8,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 1,
            },
            admission: budget.into(),
            ..Default::default()
        },
    )
}

#[test]
fn overload_sheds_instead_of_queueing_unboundedly() {
    let seed = seed();
    let stress = stress();
    let (n, num_queries) = if stress { (6000, 1500) } else { (700, 220) };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = clustered(n, &mut rng);
    let base_queries = clustered(48, &mut rng);

    let svc = build_service(&data, AdmissionBudget::depth(QUEUE_BOUND), seed ^ 0x5A7);
    let queries = skewed_queries(&base_queries, num_queries, 1.1, seed ^ 1);

    // Measured capacity: closed loop at a window comfortably under the
    // queue bound (nothing is shed here — the window never outruns it).
    let cap_rep = svc.serve(&queries, Load::Closed { window: 16 });
    assert_eq!(cap_rep.shed_queries, 0, "closed window must fit the bound");
    let capacity = cap_rep.qps();
    assert!(capacity > 0.0);
    let service_p99 = cap_rep.latency().p99;

    // Offered rates through and past capacity. The 2× point is the
    // regression the suite exists for; the sweep (stress mode) shows
    // shedding turning on as the rate crosses capacity.
    let fractions: &[f64] = if stress {
        &[0.5, 1.0, 1.5, 2.0, 3.0]
    } else {
        &[2.0]
    };
    for &frac in fractions {
        let rate = capacity * frac;
        let rep = svc.serve(
            &queries,
            Load::Open {
                rate_qps: rate,
                seed: seed ^ 7,
            },
        );

        // 1. The queue bound held.
        assert!(
            rep.peak_queue_depth <= QUEUE_BOUND,
            "rate {frac}×: peak depth {} exceeds bound {QUEUE_BOUND} (seed {seed})",
            rep.peak_queue_depth
        );
        // Terminal accounting: every query either completed or shed.
        assert_eq!(rep.results.len(), queries.len());
        assert_eq!(rep.statuses.len(), queries.len());
        let shed = rep
            .statuses
            .iter()
            .filter(|&&s| s == OpStatus::Shed)
            .count();
        assert_eq!(shed, rep.shed_queries);
        for (q, st) in rep.statuses.iter().enumerate() {
            if *st == OpStatus::Shed {
                assert!(rep.results[q].is_empty(), "shed query {q} has results");
                assert_eq!(rep.latencies[q], 0.0);
            }
        }

        // 2. Well past capacity the excess must be shed...
        if frac >= 2.0 {
            assert!(
                rep.shed_queries > 0,
                "rate {frac}× capacity shed nothing (seed {seed})"
            );
            assert!(rep.shed_rate() > 0.0);
            // ...while the service keeps doing useful work.
            assert!(rep.goodput() > 0.0, "no goodput under overload");
        }

        // 3. Accepted-request p99: finite, and bounded by the queue the
        // op can wait behind — `bound / capacity` of queueing plus the
        // at-capacity service p99, with generous slack. The unbounded
        // code's p99 at 2× grows linearly with the stream instead.
        let lat = rep.latency();
        assert!(lat.count + rep.shed_queries == queries.len());
        if lat.count > 0 {
            assert!(lat.p99.is_finite() && lat.p99 >= 0.0);
            let wait_cap = QUEUE_BOUND as f64 / capacity;
            let p99_cap = 10.0 * (wait_cap + service_p99) + 0.1;
            assert!(
                lat.p99 <= p99_cap,
                "rate {frac}×: accepted p99 {:.4}s breaches queue-implied cap {:.4}s \
                 (capacity {capacity:.0} qps, seed {seed})",
                lat.p99,
                p99_cap
            );
            // Queue wait + service decompose the end-to-end latency.
            let wait = rep.queue_wait();
            let svc_lat = rep.service_latency();
            assert!(wait.p50 >= 0.0 && svc_lat.p50 > 0.0);
            assert!(svc_lat.p99 <= lat.p99 + 1e-9);
        }
    }
    svc.shards().cleanup();
}

/// Writes are never shed, even under a budget that sheds queries: the
/// mixed op stream assigns insert ids by stream position (deletes
/// reference earlier inserts), so a dropped write would desynchronize
/// the dispatcher's arithmetic ids from the shard updater's positional
/// ones for every later write on the shard. A full write queue
/// backpressures the dispatcher instead — every write of the stream is
/// applied (id consistency is then implicitly checked by the writer's
/// dispatcher/updater id comparison and the oracle suite).
#[test]
fn writes_backpressure_instead_of_shedding() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x33);
    let data = clustered(600, &mut rng);
    let pool = clustered(200, &mut rng);
    let queries = clustered(60, &mut rng);
    // Tiny budget: depth 2 — write bursts must stall, not shed.
    let svc = build_service(&data, AdmissionBudget::depth(2), seed ^ 0x33);
    let w = e2lsh_service::mixed_ops(queries.len(), 0.4, 0.3, 600, pool.len(), seed ^ 4);
    assert!(w.num_inserts > 0 && w.num_deletes > 0);
    let rep = svc.serve_mixed(
        &queries,
        &pool,
        &w.ops,
        Load::Burst {
            rate_qps: 50_000.0,
            burst: 12,
            seed: seed ^ 5,
        },
    );
    assert_eq!(rep.shed_writes, 0, "writes must backpressure, never shed");
    assert_eq!(rep.writes_failed, 0);
    assert_eq!(
        rep.write_latencies.len(),
        w.num_inserts + w.num_deletes,
        "every write of the stream must be applied"
    );
    assert!(rep.peak_queue_depth <= 2);
    // Queries may shed under this tiny budget; accounting stays total.
    assert_eq!(rep.latency().count + rep.shed_queries, queries.len());
    svc.shards().cleanup();
}

/// The byte budget sheds too: a tiny `max_bytes` with an ample depth
/// bound must reject ops once the queued coordinate payload exceeds it.
#[test]
fn byte_budget_sheds_under_burst_arrivals() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB17E);
    let data = clustered(500, &mut rng);
    let base_queries = clustered(32, &mut rng);
    let point_bytes = DIM * std::mem::size_of::<f32>();
    let svc = build_service(
        &data,
        AdmissionBudget {
            max_depth: usize::MAX,
            max_bytes: 4 * point_bytes,
        },
        seed ^ 0xB17E,
    );
    let queries = skewed_queries(&base_queries, 160, 1.1, seed ^ 2);
    // Burst arrivals: whole batches hit the queues at one instant, so
    // the 4-point byte budget must shed parts of most bursts.
    let rep = svc.serve(
        &queries,
        Load::Burst {
            rate_qps: 100_000.0,
            burst: 16,
            seed: seed ^ 3,
        },
    );
    assert!(
        rep.shed_queries > 0,
        "byte budget never bound (seed {seed})"
    );
    assert!(rep.goodput() > 0.0);
    assert_eq!(
        rep.shed_queries + rep.latency().count,
        queries.len(),
        "terminal accounting"
    );
    svc.shards().cleanup();
}

/// Per-class budgets: a write burst that saturates a *tiny* write
/// budget backpressures writes only — the generous read budget is
/// untouched and not a single query sheds. Before the read/write
/// split, one budget value governed both queues; a write-heavy stream
/// against a budget sized for writes would have shed reads that the
/// service had ample capacity for.
#[test]
fn write_burst_cannot_shed_reads() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC1A5);
    let data = clustered(600, &mut rng);
    let pool = clustered(240, &mut rng);
    let queries = clustered(80, &mut rng);
    let svc = build_service(
        &data,
        AdmissionControl {
            read: AdmissionBudget::depth(256),
            write: AdmissionBudget::depth(2),
        },
        seed ^ 0xC1A5,
    );
    // Write-heavy stream under burst arrivals: the depth-2 write queues
    // stall the dispatcher constantly.
    let w = e2lsh_service::mixed_ops(queries.len(), 0.6, 0.3, 600, pool.len(), seed ^ 6);
    assert!(w.num_inserts + w.num_deletes > queries.len());
    let rep = svc.serve_mixed(
        &queries,
        &pool,
        &w.ops,
        Load::Burst {
            rate_qps: 50_000.0,
            burst: 16,
            seed: seed ^ 7,
        },
    );
    assert_eq!(
        rep.shed_queries, 0,
        "write burst shed reads across class budgets (seed {seed})"
    );
    assert_eq!(rep.shed_writes, 0);
    assert_eq!(rep.writes_failed, 0);
    assert_eq!(rep.write_latencies.len(), w.num_inserts + w.num_deletes);
    assert_eq!(rep.latency().count, queries.len(), "every read completed");
    svc.shards().cleanup();
}

/// `Load::ClosedBackoff` honors the `retry_after` hint: a closed-loop
/// window far above the queue bound sheds under plain `Closed`, but
/// backoff-honoring clients retry after the hinted delay and every
/// query eventually completes — sheds turn into (counted) retries.
#[test]
fn closed_backoff_retries_instead_of_shedding() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0FF);
    let data = clustered(600, &mut rng);
    let base_queries = clustered(48, &mut rng);
    let queries = skewed_queries(&base_queries, 200, 1.1, seed ^ 8);
    // Queue bound 4, window 96: the dispatch burst must overflow the
    // queues long before the workers drain them.
    let svc = build_service(&data, AdmissionBudget::depth(4), seed ^ 0xB0FF);

    let plain = svc.serve(&queries, Load::Closed { window: 96 });
    assert!(
        plain.shed_queries > 0,
        "window 96 over bound 4 must shed without backoff (seed {seed})"
    );
    assert_eq!(plain.retries, 0);

    let backoff = svc.serve(
        &queries,
        Load::ClosedBackoff {
            window: 96,
            max_retries: 200,
        },
    );
    assert_eq!(
        backoff.shed_queries, 0,
        "backoff-honoring clients still shed (seed {seed})"
    );
    assert!(
        backoff.retries > 0,
        "no retries despite guaranteed overflow (seed {seed})"
    );
    assert_eq!(backoff.latency().count, queries.len());
    assert!(backoff.peak_queue_depth <= 4);
    // Backoff wait is part of the client-visible latency (measured from
    // the first dispatch attempt).
    assert!(backoff.latency().max >= 0.0);
    svc.shards().cleanup();
}
