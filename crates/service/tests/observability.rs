//! Observability suite: trace spans, bounded histograms, and the
//! export schema on live sessions.
//!
//! What is checked (seeded; set `E2LSH_TEST_SEED` to reproduce a CI
//! failure locally — the CI `observability` job runs this file in
//! release under several seeds):
//!
//! 1. **histogram error bound** (property) — for random latency
//!    samples, every quantile of a [`LatencyHistogram`] brackets the
//!    exact nearest-rank percentile within the bucket relative error,
//!    and snapshot subtraction is bit-identical to a fresh
//!    interval-only histogram;
//! 2. **trace spans on a live session** — with `trace_sample = 1.0`
//!    every query and write produces a span whose stage durations
//!    telescope to its end-to-end latency, with real shard windows and
//!    valid replica indices;
//! 3. **slow-query log** — a zero threshold logs everything (bounded
//!    by capacity) with full breakdowns;
//! 4. **interval exactness under concurrent traffic** — a mid-session
//!    snapshot subtracted from a later one equals a histogram built
//!    from exactly the interval's ticket latencies, even when the
//!    interval's queries came from concurrent clients;
//! 5. **export schema round-trip** — a live session's report
//!    serializes via [`report_json`] and parses back with the required
//!    top-level keys.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_service::{
    percentile, AdmissionControl, DeviceSpec, LatencyHistogram, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService, SpanKind, WriteOp,
};
use e2lsh_storage::device::sim::DeviceProfile;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DIM: usize = 8;
const AMPLE: usize = 1_000_000;

fn seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn clustered(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..DIM).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(DIM, n);
    let mut p = vec![0.0f32; DIM];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn build_service(
    data: &Dataset,
    tag: &str,
    mutate: impl FnOnce(&mut ServiceConfig),
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: seed() ^ 0x0B5,
            dir: std::env::temp_dir().join(format!(
                "e2lsh-observability-{}-{tag}-seed{}",
                std::process::id(),
                seed()
            )),
            cache_blocks: 2048,
            ..Default::default()
        },
        |ds| E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim()),
    )
    .expect("shard build");
    let mut config = ServiceConfig {
        workers_per_replica: 2,
        contexts_per_worker: 8,
        k: 3,
        s_override: Some(AMPLE),
        device: DeviceSpec::SimPerWorker {
            profile: DeviceProfile::ESSD,
            num_devices: 1,
        },
        admission: AdmissionControl::UNBOUNDED,
        ..Default::default()
    };
    mutate(&mut config);
    ShardedService::new(shards, config)
}

// ---------------------------------------------------------------------------
// 1. Histogram properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every histogram quantile brackets the exact nearest-rank value:
    /// `exact ≤ approx ≤ exact × (1 + RELATIVE_ERROR)` for positive
    /// samples inside the tracked range.
    #[test]
    fn histogram_quantiles_within_error_bound(
        samples in proptest::collection::vec(1e-6f64..10.0, 1..200),
        p in 0.0f64..100.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact = percentile(&samples, p);
        let approx = h.quantile(p);
        prop_assert!(
            approx >= exact,
            "quantile must not undershoot: p{} exact {} approx {}",
            p, exact, approx
        );
        prop_assert!(
            approx <= exact * (1.0 + LatencyHistogram::RELATIVE_ERROR),
            "quantile beyond the bucket error bound: p{} exact {} approx {}",
            p, exact, approx
        );
    }

    /// Snapshot subtraction is bit-identical to a histogram that saw
    /// only the interval, wherever the split lands.
    #[test]
    fn histogram_subtraction_matches_fresh_interval(
        before in proptest::collection::vec(1e-7f64..100.0, 0..100),
        after in proptest::collection::vec(1e-7f64..100.0, 0..100),
    ) {
        let mut running = LatencyHistogram::new();
        for &s in &before {
            running.record(s);
        }
        let snapshot = running.clone();
        let mut fresh = LatencyHistogram::new();
        for &s in &after {
            running.record(s);
            fresh.record(s);
        }
        prop_assert_eq!(running.minus(&snapshot), fresh);
    }

    /// Merging is the inverse of subtraction and count/mean stay
    /// consistent.
    #[test]
    fn histogram_merge_roundtrip(
        a in proptest::collection::vec(1e-6f64..1.0, 0..80),
        b in proptest::collection::vec(1e-6f64..1.0, 0..80),
    ) {
        let mut ha = LatencyHistogram::new();
        for &s in &a { ha.record(s); }
        let mut hb = LatencyHistogram::new();
        for &s in &b { hb.record(s); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.minus(&hb), ha);
        prop_assert_eq!(merged.minus(&ha), hb);
    }
}

// ---------------------------------------------------------------------------
// 2–5. Live-session tracing, interval exactness, export
// ---------------------------------------------------------------------------

/// Full-sample tracing on a mixed read/write session: every span's
/// stage durations telescope to its end-to-end latency, query spans
/// carry real shard windows, and write spans ride the writer thread.
#[test]
fn live_spans_telescope_and_cover_both_kinds() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0B51);
    let data = clustered(600, &mut rng);
    let queries = clustered(16, &mut rng);
    let extra = clustered(3, &mut rng);
    let svc = build_service(&data, "spans", |c| {
        c.trace_sample = 1.0;
        c.trace_capacity = 256;
    });
    let session = svc.start();
    let client = session.client();

    for qi in 0..queries.len() {
        let r = client.query(queries.point(qi)).wait();
        assert_eq!(r.status, OpStatus::Ok);
    }
    for j in 0..extra.len() {
        assert!(
            client
                .write_blocking(WriteOp::Insert(extra.point(j)))
                .wait()
                .applied
        );
    }

    let spans = session.traces();
    let n_queries = spans.iter().filter(|s| s.kind == SpanKind::Query).count();
    let n_writes = spans.len() - n_queries;
    assert_eq!(
        n_queries,
        queries.len(),
        "sample=1.0 must trace every query (seed {seed})"
    );
    assert_eq!(n_writes, extra.len(), "every write traced (seed {seed})");

    for s in &spans {
        // The tentpole acceptance: stages sum to end-to-end latency.
        let total = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!(
            (total - s.end_to_end()).abs() < 1e-9,
            "stages must telescope: {} vs {} (seed {seed})",
            total,
            s.end_to_end()
        );
        assert!(s.end_to_end() > 0.0);
        match s.kind {
            SpanKind::Query => {
                // One partial per shard (no failovers here), each
                // windowed within the span and attributed to a replica.
                assert_eq!(s.shards.len(), 2, "partials per query (seed {seed})");
                assert!(s.total_io() > 0, "queries do device I/O (seed {seed})");
                for w in &s.shards {
                    assert!(w.shard < 2 && w.replica == 0);
                    assert!(w.finish >= w.start);
                    assert!(w.finish <= s.resolved);
                }
            }
            SpanKind::Write { .. } => {
                assert_eq!(s.shards.len(), 1, "writes touch one shard (seed {seed})");
                assert!(s.route() >= 0.0 && s.queue_wait() >= 0.0);
            }
        }
        let line = s.render();
        assert!(line.contains("e2e") && line.contains("service"));
    }

    drop(session.shutdown());
    svc.shards().cleanup();
}

/// A zero slow-query threshold logs every request with a full
/// breakdown, bounded by `slow_log_capacity`; the log also rides the
/// report snapshot.
#[test]
fn slow_query_log_retains_breakdowns() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x510);
    let data = clustered(600, &mut rng);
    let queries = clustered(12, &mut rng);
    let svc = build_service(&data, "slowlog", |c| {
        c.slow_query_threshold = 0.0; // everything is "slow"
        c.slow_log_capacity = 8;
    });
    let session = svc.start();
    let client = session.client();
    for qi in 0..queries.len() {
        client.query(queries.point(qi)).wait();
    }
    let slow = session.slow_queries();
    assert_eq!(slow.len(), 8, "log capped at capacity (seed {seed})");
    for s in &slow {
        let total = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!((total - s.end_to_end()).abs() < 1e-9);
        assert!(!s.shards.is_empty(), "slow log keeps shard windows");
    }
    // The report snapshot carries the same log.
    let report = session.metrics();
    assert_eq!(report.slow_queries.len(), 8);
    // Nothing was *sampled* (trace_sample defaults to 0) — the ring
    // stays empty while the slow log fills.
    assert!(session.traces().is_empty());
    drop(session.shutdown());
    svc.shards().cleanup();
}

/// Interval slicing is exact under concurrency: the histogram of
/// `interval_since(mid)` is bit-identical to one built from exactly
/// the latencies of the tickets resolved inside the interval, even
/// with several clients submitting in parallel.
#[test]
fn interval_histogram_is_bit_exact_under_concurrent_traffic() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x171);
    let data = clustered(600, &mut rng);
    let phase1 = clustered(20, &mut rng);
    let phase2 = clustered(30, &mut rng);
    let svc = build_service(&data, "interval", |_| {});
    let session = svc.start();

    // Phase 1: quiesced before the snapshot.
    let c0 = session.client();
    for qi in 0..phase1.len() {
        assert_eq!(c0.query(phase1.point(qi)).wait().status, OpStatus::Ok);
    }
    let mid = session.metrics();
    assert_eq!(mid.completed_queries, phase1.len());

    // Phase 2: three concurrent clients; collect every ticket latency.
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let client = session.client();
                let phase2 = &phase2;
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    for qi in (0..phase2.len()).filter(|qi| qi % 3 == t) {
                        let r = client.query(phase2.point(qi)).wait();
                        assert_eq!(r.status, OpStatus::Ok);
                        lats.push(r.latency);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let fin = session.metrics();
    let interval = fin.interval_since(&mid);

    // Rebuild the interval's histogram from the ticket latencies alone:
    // must be *bit-identical* (integer bucket counts; record order does
    // not matter).
    let mut expected = LatencyHistogram::new();
    for &l in &latencies {
        expected.record(l);
    }
    assert_eq!(
        interval.read_hist, expected,
        "interval histogram != fresh interval-only histogram (seed {seed})"
    );
    assert_eq!(interval.completed_queries, phase2.len());
    assert_eq!(interval.latency().count, phase2.len());
    // And no O(completed-ops) state rides the snapshots.
    assert!(fin.latencies.is_empty() && fin.write_latencies.is_empty());

    drop(session.shutdown());
    svc.shards().cleanup();
}

/// The JSON exporter on a real session report: parses back, carries the
/// required keys, and its counters match the report.
#[test]
fn export_schema_round_trips_live_report() {
    let seed = seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xEC5);
    let data = clustered(600, &mut rng);
    let queries = clustered(10, &mut rng);
    let svc = build_service(&data, "export", |c| {
        c.slow_query_threshold = 0.0;
        c.slow_log_capacity = 4;
    });
    let session = svc.start();
    let client = session.client();
    for qi in 0..queries.len() {
        client.query(queries.point(qi)).wait();
    }
    let report = session.shutdown();
    let json = e2lsh_service::report_json(&report);
    let v = serde_json::from_str(&json).expect("export must parse");
    for key in [
        "schema_version",
        "counters",
        "gauges",
        "histograms",
        "slow_queries",
    ] {
        assert!(v.get(key).is_some(), "missing top-level key {key}");
    }
    let counters = v.get("counters").unwrap();
    assert_eq!(
        counters.get("completed_queries").unwrap().as_f64(),
        Some(queries.len() as f64)
    );
    assert_eq!(
        v.get("slow_queries").unwrap().as_array().unwrap().len(),
        4,
        "slow log rides the export (seed {seed})"
    );
    let hist = v.get("histograms").unwrap().get("read_latency").unwrap();
    assert_eq!(
        hist.get("count").unwrap().as_f64(),
        Some(queries.len() as f64)
    );
    assert!(hist.get("p99").unwrap().as_f64().unwrap() > 0.0);
    svc.shards().cleanup();
}
