//! Seeded synthetic point-cloud generators.
//!
//! Three families cover the paper's suite:
//!
//! * [`Generator::Uniform`] — i.i.d. uniform coordinates (the paper's RAND,
//!   a hard dataset: RC 1.42, LID 49.6);
//! * [`Generator::Gaussian`] — one isotropic Gaussian blob (the paper's
//!   GAUSS; in high dimension all pairwise distances concentrate, making it
//!   the hardest set: RC 1.14, LID 147);
//! * [`Generator::Clustered`] — a Gaussian-mixture with optional byte
//!   quantization and sparsity, standing in for the real-world feature
//!   datasets (SIFT, GIST, MSONG, GLOVE, MNIST, BIGANN). Real descriptor
//!   sets are strongly clustered, which is exactly what gives them their
//!   higher relative contrast (RC 2–4) and lower LID (20–25).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::lsh::sample_standard_normal;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the Gaussian-mixture generator.
#[derive(Clone, Debug)]
pub struct ClusteredSpec {
    /// Number of mixture components.
    pub n_clusters: usize,
    /// Standard deviation of points around their cluster center.
    pub cluster_std: f32,
    /// Cluster centers are drawn uniformly from `[center_lo, center_hi]^d`.
    pub center_lo: f32,
    /// See `center_lo`.
    pub center_hi: f32,
    /// Fraction of coordinates forced to zero in every center (models the
    /// sparsity of MNIST-like pixel data). 0.0 disables.
    pub sparsity: f32,
    /// Quantize coordinates to integers clipped to `[0, 255]` (the paper's
    /// "byte" datasets: SIFT, MNIST, BIGANN).
    pub byte_quantize: bool,
}

/// A synthetic dataset generator.
#[derive(Clone, Debug)]
pub enum Generator {
    /// i.i.d. uniform coordinates on `[0, scale]`.
    Uniform { scale: f32 },
    /// One isotropic Gaussian with the given standard deviation.
    Gaussian { std: f32 },
    /// Gaussian mixture (see [`ClusteredSpec`]).
    Clustered(ClusteredSpec),
}

impl Generator {
    /// Generate `n` points of dimension `dim`, deterministically from
    /// `seed`.
    pub fn generate(&self, n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::with_capacity(dim, n);
        let mut p = vec![0.0f32; dim];
        match self {
            Generator::Uniform { scale } => {
                for _ in 0..n {
                    for v in p.iter_mut() {
                        *v = rng.gen::<f32>() * scale;
                    }
                    ds.push(&p);
                }
            }
            Generator::Gaussian { std } => {
                for _ in 0..n {
                    for v in p.iter_mut() {
                        *v = sample_standard_normal(&mut rng) * std;
                    }
                    ds.push(&p);
                }
            }
            Generator::Clustered(spec) => {
                let centers = Self::make_centers(spec, dim, &mut rng);
                for _ in 0..n {
                    let c = &centers[rng.gen_range(0..centers.len())];
                    for (v, &cv) in p.iter_mut().zip(c.iter()) {
                        let mut x = cv + sample_standard_normal(&mut rng) * spec.cluster_std;
                        if spec.byte_quantize {
                            x = x.round().clamp(0.0, 255.0);
                        }
                        *v = x;
                    }
                    ds.push(&p);
                }
            }
        }
        ds
    }

    /// Generate a database of `n` points and a query set of `n_queries`
    /// points from the *same* distribution (same mixture centers), the way
    /// the real datasets ship with held-out query files. The two sets come
    /// from one RNG stream, so they never coincide but do share structure.
    pub fn generate_with_queries(
        &self,
        n: usize,
        n_queries: usize,
        dim: usize,
        seed: u64,
    ) -> (Dataset, Dataset) {
        let all = self.generate(n + n_queries, dim, seed);
        let mut data = Dataset::with_capacity(dim, n);
        let mut queries = Dataset::with_capacity(dim, n_queries);
        for i in 0..n {
            data.push(all.point(i));
        }
        for i in n..n + n_queries {
            queries.push(all.point(i));
        }
        (data, queries)
    }

    fn make_centers(spec: &ClusteredSpec, dim: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f32>> {
        assert!(spec.n_clusters > 0);
        assert!(spec.center_hi > spec.center_lo);
        let mut centers = Vec::with_capacity(spec.n_clusters);
        for _ in 0..spec.n_clusters {
            let mut c = vec![0.0f32; dim];
            for v in c.iter_mut() {
                if spec.sparsity > 0.0 && rng.gen::<f32>() < spec.sparsity {
                    *v = 0.0;
                } else {
                    *v = spec.center_lo + rng.gen::<f32>() * (spec.center_hi - spec.center_lo);
                }
            }
            centers.push(c);
        }
        centers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2lsh_core::distance::dist;

    #[test]
    fn deterministic() {
        let g = Generator::Uniform { scale: 10.0 };
        let a = g.generate(50, 8, 1);
        let b = g.generate(50, 8, 1);
        assert_eq!(a.flat(), b.flat());
        let c = g.generate(50, 8, 2);
        assert_ne!(a.flat(), c.flat());
    }

    #[test]
    fn uniform_range() {
        let g = Generator::Uniform { scale: 5.0 };
        let ds = g.generate(200, 16, 3);
        for &v in ds.flat() {
            assert!((0.0..=5.0).contains(&v));
        }
        assert!(ds.max_abs_coord() > 4.0, "should nearly reach the scale");
    }

    #[test]
    fn gaussian_moments() {
        let g = Generator::Gaussian { std: 2.0 };
        let ds = g.generate(2000, 8, 4);
        let mean: f32 = ds.flat().iter().sum::<f32>() / ds.flat().len() as f32;
        let var: f32 = ds.flat().iter().map(|v| v * v).sum::<f32>() / ds.flat().len() as f32;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn byte_quantized_is_integral_and_clipped() {
        let g = Generator::Clustered(ClusteredSpec {
            n_clusters: 5,
            cluster_std: 30.0,
            center_lo: 0.0,
            center_hi: 255.0,
            sparsity: 0.0,
            byte_quantize: true,
        });
        let ds = g.generate(300, 12, 5);
        for &v in ds.flat() {
            assert!((0.0..=255.0).contains(&v));
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn sparsity_zeroes_coordinates() {
        let g = Generator::Clustered(ClusteredSpec {
            n_clusters: 3,
            cluster_std: 0.01,
            center_lo: 1.0,
            center_hi: 100.0,
            sparsity: 0.8,
            byte_quantize: true,
        });
        let ds = g.generate(500, 20, 6);
        let zeros = ds.flat().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / ds.flat().len() as f32;
        assert!(frac > 0.6, "zero fraction {frac}");
    }

    #[test]
    fn clustered_data_is_clustered() {
        // Points sharing a cluster should be far closer than the typical
        // inter-cluster distance.
        let g = Generator::Clustered(ClusteredSpec {
            n_clusters: 4,
            cluster_std: 0.5,
            center_lo: 0.0,
            center_hi: 100.0,
            sparsity: 0.0,
            byte_quantize: false,
        });
        let ds = g.generate(400, 16, 7);
        // Nearest-neighbor distance of a point should be much smaller than
        // the mean pairwise distance.
        let q = ds.point(0);
        let mut min_d = f32::INFINITY;
        let mut sum_d = 0.0f32;
        for i in 1..ds.len() {
            let d = dist(q, ds.point(i));
            min_d = min_d.min(d);
            sum_d += d;
        }
        let mean_d = sum_d / (ds.len() - 1) as f32;
        assert!(
            mean_d > 5.0 * min_d,
            "mean {mean_d} should dwarf min {min_d}"
        );
    }

    #[test]
    fn queries_share_structure_but_not_points() {
        let g = Generator::Clustered(ClusteredSpec {
            n_clusters: 4,
            cluster_std: 0.5,
            center_lo: 0.0,
            center_hi: 100.0,
            sparsity: 0.0,
            byte_quantize: false,
        });
        let (data, queries) = g.generate_with_queries(300, 20, 8, 9);
        assert_eq!(data.len(), 300);
        assert_eq!(queries.len(), 20);
        // Every query must have a database point nearby (same mixture):
        // within a few cluster standard deviations.
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            let min = (0..data.len())
                .map(|i| dist(q, data.point(i)))
                .fold(f32::INFINITY, f32::min);
            assert!(min < 6.0, "query {qi} isolated: nn dist {min}");
        }
    }
}
