//! # ann-datasets
//!
//! Synthetic stand-ins for the eight datasets of the E2LSHoS paper's
//! evaluation (Table 1), plus ground-truth computation, accuracy metrics,
//! and the dataset-hardness proxies the paper reports (Relative Contrast
//! and Local Intrinsic Dimensionality).
//!
//! The paper evaluates on MSONG, SIFT, GIST, RAND, GLOVE, GAUSS, MNIST and
//! BIGANN. The real files are not redistributable (and two of the paper's
//! sets are synthetic to begin with), so this crate generates seeded
//! synthetic datasets that match each set's size class, dimensionality,
//! value type (float vs byte) and approximate hardness, scaled down to
//! laptop size by default (see `DESIGN.md` §8). Set the environment
//! variable `E2LSH_SCALE=paper` to generate full-size datasets, or
//! `E2LSH_N=<n>` to force a specific cardinality.

pub mod generators;
pub mod ground_truth;
pub mod hardness;
pub mod metrics;
pub mod suite;

pub use generators::{ClusteredSpec, Generator};
pub use ground_truth::GroundTruth;
pub use metrics::{overall_ratio, recall};
pub use suite::{load, DatasetId, NamedDataset};
