//! Exact k-nearest-neighbor ground truth by brute force.
//!
//! Every accuracy metric in the paper (the *overall ratio*, Section 3.2) is
//! relative to the exact neighbors, so experiments precompute them once per
//! (dataset, query set) pair.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;

/// Exact top-`k` neighbors for a set of queries.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    k: usize,
    /// `[query][rank] = (object id, distance)`, ascending by distance.
    neighbors: Vec<Vec<(u32, f32)>>,
}

impl GroundTruth {
    /// Compute exact top-`k` neighbors of every query by linear scan.
    pub fn compute(dataset: &Dataset, queries: &Dataset, k: usize) -> Self {
        assert_eq!(dataset.dim(), queries.dim());
        assert!(k >= 1);
        let k = k.min(dataset.len());
        let mut neighbors = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            let q = queries.point(qi);
            // Bounded insertion sort into a k-sized buffer: O(n·k) worst
            // case but k is small and the branch predicts well.
            let mut best: Vec<(u32, f32)> = Vec::with_capacity(k + 1);
            let mut worst = f32::INFINITY;
            for oid in 0..dataset.len() {
                let d2 = dist2(q, dataset.point(oid));
                if d2 < worst || best.len() < k {
                    let pos = best
                        .binary_search_by(|&(_, bd)| {
                            bd.partial_cmp(&d2).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or_else(|p| p);
                    best.insert(pos, (oid as u32, d2));
                    if best.len() > k {
                        best.pop();
                    }
                    if best.len() == k {
                        worst = best[k - 1].1;
                    }
                }
            }
            for item in best.iter_mut() {
                item.1 = item.1.sqrt();
            }
            neighbors.push(best);
        }
        Self { k, neighbors }
    }

    /// `k` the ground truth was computed for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.neighbors.len()
    }

    /// Exact neighbors `(id, distance)` of query `qi`, ascending.
    #[inline]
    pub fn neighbors(&self, qi: usize) -> &[(u32, f32)] {
        &self.neighbors[qi]
    }

    /// Distance of the exact `rank`-th neighbor (0-based) of query `qi`.
    #[inline]
    pub fn dist(&self, qi: usize, rank: usize) -> f32 {
        self.neighbors[qi][rank].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_dataset() -> Dataset {
        // Points at x = 0, 1, 2, …, 9 on a line.
        let rows: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 0.0]).collect();
        Dataset::from_rows(&rows)
    }

    #[test]
    fn exact_neighbors_on_a_line() {
        let ds = grid_dataset();
        let queries = Dataset::from_rows(&[vec![2.2f32, 0.0]]);
        let gt = GroundTruth::compute(&ds, &queries, 3);
        let n = gt.neighbors(0);
        assert_eq!(n[0].0, 2);
        assert_eq!(n[1].0, 3);
        assert_eq!(n[2].0, 1);
        assert!((n[0].1 - 0.2).abs() < 1e-6);
        assert!((n[1].1 - 0.8).abs() < 1e-6);
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let ds = Dataset::from_rows(&[vec![0.0f32], vec![1.0]]);
        let queries = Dataset::from_rows(&[vec![0.4f32]]);
        let gt = GroundTruth::compute(&ds, &queries, 10);
        assert_eq!(gt.k(), 2);
        assert_eq!(gt.neighbors(0).len(), 2);
    }

    #[test]
    fn distances_ascending() {
        let ds = grid_dataset();
        let queries = Dataset::from_rows(&[vec![5.1f32, 0.0], vec![0.0, 0.0]]);
        let gt = GroundTruth::compute(&ds, &queries, 5);
        for qi in 0..2 {
            let n = gt.neighbors(qi);
            for w in n.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn matches_full_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|_| (0..6).map(|_| rng.gen::<f32>()).collect())
            .collect();
        let ds = Dataset::from_rows(&rows);
        let queries = Dataset::from_rows(&rows[..5]);
        let gt = GroundTruth::compute(&ds, &queries, 7);
        for qi in 0..5 {
            let q = queries.point(qi);
            let mut all: Vec<(u32, f32)> = (0..ds.len())
                .map(|i| (i as u32, dist2(q, ds.point(i)).sqrt()))
                .collect();
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (rank, &(id, d)) in all[..7].iter().enumerate() {
                // IDs can differ under distance ties; distances must match.
                let _ = id;
                assert!((gt.dist(qi, rank) - d).abs() < 1e-5);
            }
        }
    }
}
