//! Accuracy metrics (paper Section 3.2).
//!
//! The paper compares methods at equal accuracy measured by the *overall
//! ratio*: `(1/k)·Σ_i ‖o_i, q‖ / ‖o*_i, q‖` where `o_i` is the i-th
//! returned neighbor and `o*_i` the exact i-th neighbor. 1.0 means exact;
//! the paper's default target is 1.05.

use crate::ground_truth::GroundTruth;

/// Overall ratio of one query's results against ground truth.
///
/// `results` are `(id, distance)` sorted ascending, as returned by every
/// search routine in this workspace. Missing results (fewer than `k`
/// returned) are penalized by pairing the remaining exact neighbors with
/// the dataset's worst returned distance — or `penalty_ratio` if nothing
/// was returned at all.
pub fn overall_ratio(results: &[(u32, f32)], gt: &[(u32, f32)], k: usize) -> f64 {
    assert!(k >= 1);
    let k = k.min(gt.len());
    if k == 0 {
        return 1.0;
    }
    const PENALTY_RATIO: f64 = 10.0;
    let mut sum = 0.0f64;
    for (i, &(_, exact)) in gt.iter().enumerate().take(k) {
        let exact = exact as f64;
        match results.get(i) {
            Some(&(_, d)) => {
                if exact <= f64::EPSILON {
                    // The query coincides with its exact neighbor: the
                    // ratio is 1 when we found an equally-near object.
                    sum += if (d as f64) <= f64::EPSILON {
                        1.0
                    } else {
                        PENALTY_RATIO
                    };
                } else {
                    sum += (d as f64 / exact).max(1.0);
                }
            }
            None => sum += PENALTY_RATIO,
        }
    }
    sum / k as f64
}

/// Mean overall ratio over a query set.
pub fn mean_overall_ratio(all_results: &[Vec<(u32, f32)>], gt: &GroundTruth, k: usize) -> f64 {
    assert_eq!(all_results.len(), gt.num_queries());
    let mut sum = 0.0;
    for (qi, res) in all_results.iter().enumerate() {
        sum += overall_ratio(res, gt.neighbors(qi), k);
    }
    sum / all_results.len().max(1) as f64
}

/// Recall@k: fraction of the exact top-k IDs present in the returned top-k.
pub fn recall(results: &[(u32, f32)], gt: &[(u32, f32)], k: usize) -> f64 {
    let k = k.min(gt.len());
    if k == 0 {
        return 1.0;
    }
    let exact: std::collections::HashSet<u32> = gt[..k].iter().map(|&(id, _)| id).collect();
    let hit = results
        .iter()
        .take(k)
        .filter(|&&(id, _)| exact.contains(&id))
        .count();
    hit as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_results_give_ratio_one() {
        let gt = vec![(0u32, 1.0f32), (1, 2.0), (2, 3.0)];
        assert_eq!(overall_ratio(&gt, &gt, 3), 1.0);
        assert_eq!(recall(&gt, &gt, 3), 1.0);
    }

    #[test]
    fn worse_results_raise_ratio() {
        let gt = vec![(0u32, 1.0f32), (1, 2.0)];
        let res = vec![(5u32, 1.5f32), (6, 2.0)];
        let r = overall_ratio(&res, &gt, 2);
        assert!((r - (1.5 / 1.0 + 2.0 / 2.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_never_below_one() {
        // A returned distance below the exact one can only happen through
        // floating point noise; clamp at 1.
        let gt = vec![(0u32, 1.0f32)];
        let res = vec![(0u32, 0.999_999f32)];
        assert_eq!(overall_ratio(&res, &gt, 1), 1.0);
    }

    #[test]
    fn missing_results_penalized() {
        let gt = vec![(0u32, 1.0f32), (1, 2.0)];
        let res = vec![(0u32, 1.0f32)];
        let r = overall_ratio(&res, &gt, 2);
        assert!(r > 5.0, "missing neighbor must hurt: {r}");
    }

    #[test]
    fn zero_distance_exact_neighbor() {
        let gt = vec![(0u32, 0.0f32)];
        let res_hit = vec![(0u32, 0.0f32)];
        let res_miss = vec![(3u32, 0.5f32)];
        assert_eq!(overall_ratio(&res_hit, &gt, 1), 1.0);
        assert!(overall_ratio(&res_miss, &gt, 1) > 1.0);
    }

    #[test]
    fn recall_counts_ids_not_order() {
        let gt = vec![(0u32, 1.0f32), (1, 2.0), (2, 3.0)];
        let res = vec![(2u32, 3.0f32), (0, 1.0), (9, 9.0)];
        assert!((recall(&res, &gt, 3) - 2.0 / 3.0).abs() < 1e-9);
    }
}
