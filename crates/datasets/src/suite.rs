//! The named evaluation suite mirroring the paper's Table 1.
//!
//! Each [`DatasetId`] maps to a seeded generator whose (n, d, value type)
//! follow the paper at a reduced default scale (see `DESIGN.md` §8), and
//! whose cluster structure is tuned so the hardness ordering (RC / LID) and
//! the radius-schedule length roughly track Table 1 / Table 4.
//!
//! Scale control:
//! * `E2LSH_SCALE=paper` regenerates the full-size sets (hours of compute);
//! * `E2LSH_N=<n>` forces a specific database size for every set.

use crate::generators::{ClusteredSpec, Generator};
use e2lsh_core::dataset::Dataset;

/// The eight datasets of the paper's evaluation (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Audio features; float; easiest (RC 4.04).
    Msong,
    /// SIFT image descriptors; byte.
    Sift,
    /// GIST image descriptors; float; small coordinate range (r = 4).
    Gist,
    /// Uniform synthetic; float; hard (RC 1.42).
    Rand,
    /// Word embeddings; float.
    Glove,
    /// Isotropic Gaussian synthetic; float; hardest (RC 1.14, LID 147).
    Gauss,
    /// Handwritten digit pixels; byte; sparse.
    Mnist,
    /// Large-scale SIFT; byte; used for the scaling experiments.
    Bigann,
}

impl DatasetId {
    /// All eight datasets in the paper's Table 1 order.
    pub const ALL: [DatasetId; 8] = [
        DatasetId::Msong,
        DatasetId::Sift,
        DatasetId::Gist,
        DatasetId::Rand,
        DatasetId::Glove,
        DatasetId::Gauss,
        DatasetId::Mnist,
        DatasetId::Bigann,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Msong => "MSONG",
            DatasetId::Sift => "SIFT",
            DatasetId::Gist => "GIST",
            DatasetId::Rand => "RAND",
            DatasetId::Glove => "GLOVE",
            DatasetId::Gauss => "GAUSS",
            DatasetId::Mnist => "MNIST",
            DatasetId::Bigann => "BIGANN",
        }
    }

    /// Default (scaled-down) database size.
    pub fn default_n(&self) -> usize {
        match self {
            DatasetId::Msong => 30_000,
            DatasetId::Sift => 50_000,
            DatasetId::Gist => 25_000,
            DatasetId::Rand => 30_000,
            DatasetId::Glove => 30_000,
            DatasetId::Gauss => 30_000,
            DatasetId::Mnist => 40_000,
            DatasetId::Bigann => 150_000,
        }
    }

    /// Full-size database size as in the paper's Table 1.
    pub fn paper_n(&self) -> usize {
        match self {
            DatasetId::Msong => 983_000,
            DatasetId::Sift => 1_000_000,
            DatasetId::Gist => 1_000_000,
            DatasetId::Rand => 1_000_000,
            DatasetId::Glove => 1_183_000,
            DatasetId::Gauss => 2_000_000,
            DatasetId::Mnist => 8_000_000,
            DatasetId::Bigann => 1_000_000_000,
        }
    }

    /// Scaled dimensionality (paper dimensionality in parentheses in
    /// `DESIGN.md` §8).
    pub fn dim(&self) -> usize {
        match self {
            DatasetId::Msong => 128, // paper: 420
            DatasetId::Sift => 128,  // paper: 128
            DatasetId::Gist => 192,  // paper: 960
            DatasetId::Rand => 100,  // paper: 100
            DatasetId::Glove => 100, // paper: 100
            DatasetId::Gauss => 128, // paper: 512
            DatasetId::Mnist => 196, // paper: 784
            DatasetId::Bigann => 96, // paper: 128
        }
    }

    /// Whether the paper stores this set as bytes.
    pub fn is_byte(&self) -> bool {
        matches!(self, DatasetId::Sift | DatasetId::Mnist | DatasetId::Bigann)
    }

    /// The seeded generator for this dataset.
    pub fn generator(&self) -> Generator {
        match self {
            // Audio features: strongly clustered, moderate spread → easy.
            DatasetId::Msong => Generator::Clustered(ClusteredSpec {
                n_clusters: 50,
                cluster_std: 6.0,
                center_lo: 0.0,
                center_hi: 100.0,
                sparsity: 0.0,
                byte_quantize: false,
            }),
            // SIFT descriptors: byte-valued, clustered.
            DatasetId::Sift => Generator::Clustered(ClusteredSpec {
                n_clusters: 80,
                cluster_std: 22.0,
                center_lo: 10.0,
                center_hi: 200.0,
                sparsity: 0.0,
                byte_quantize: true,
            }),
            // GIST: small coordinate range ([0, ~0.5]) → few radii.
            DatasetId::Gist => Generator::Clustered(ClusteredSpec {
                n_clusters: 40,
                cluster_std: 0.045,
                center_lo: 0.02,
                center_hi: 0.40,
                sparsity: 0.0,
                byte_quantize: false,
            }),
            // Uniform hypercube.
            DatasetId::Rand => Generator::Uniform { scale: 1.0 },
            // Word embeddings: clustered around the origin.
            DatasetId::Glove => Generator::Clustered(ClusteredSpec {
                n_clusters: 60,
                cluster_std: 0.35,
                center_lo: -1.4,
                center_hi: 1.4,
                sparsity: 0.0,
                byte_quantize: false,
            }),
            // Single isotropic Gaussian: the hardest set.
            DatasetId::Gauss => Generator::Gaussian { std: 1.0 },
            // Pixel data: sparse byte clusters.
            DatasetId::Mnist => Generator::Clustered(ClusteredSpec {
                n_clusters: 30,
                cluster_std: 35.0,
                center_lo: 0.0,
                center_hi: 255.0,
                sparsity: 0.72,
                byte_quantize: true,
            }),
            // BIGANN: SIFT-like at scale.
            DatasetId::Bigann => Generator::Clustered(ClusteredSpec {
                n_clusters: 120,
                cluster_std: 22.0,
                center_lo: 10.0,
                center_hi: 200.0,
                sparsity: 0.0,
                byte_quantize: true,
            }),
        }
    }

    /// Master seed (fixed per dataset so all experiments agree).
    pub fn seed(&self) -> u64 {
        match self {
            DatasetId::Msong => 101,
            DatasetId::Sift => 102,
            DatasetId::Gist => 103,
            DatasetId::Rand => 104,
            DatasetId::Glove => 105,
            DatasetId::Gauss => 106,
            DatasetId::Mnist => 107,
            DatasetId::Bigann => 108,
        }
    }
}

/// A loaded dataset with its held-out query set.
pub struct NamedDataset {
    pub id: DatasetId,
    pub data: Dataset,
    pub queries: Dataset,
}

/// Resolve the effective database size honoring `E2LSH_SCALE` / `E2LSH_N`.
pub fn effective_n(id: DatasetId) -> usize {
    if let Ok(n) = std::env::var("E2LSH_N") {
        if let Ok(n) = n.parse::<usize>() {
            return n.max(100);
        }
    }
    match std::env::var("E2LSH_SCALE").as_deref() {
        Ok("paper") => id.paper_n(),
        _ => id.default_n(),
    }
}

/// Default number of held-out queries per dataset.
pub const DEFAULT_QUERIES: usize = 100;

/// Generate the named dataset at its effective scale with
/// [`DEFAULT_QUERIES`] held-out queries.
pub fn load(id: DatasetId) -> NamedDataset {
    load_sized(id, effective_n(id), DEFAULT_QUERIES)
}

/// Generate the named dataset at an explicit size.
pub fn load_sized(id: DatasetId, n: usize, n_queries: usize) -> NamedDataset {
    let (data, queries) = id
        .generator()
        .generate_with_queries(n, n_queries, id.dim(), id.seed());
    NamedDataset { id, data, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_load_small() {
        for id in DatasetId::ALL {
            let ds = load_sized(id, 500, 10);
            assert_eq!(ds.data.len(), 500, "{}", id.name());
            assert_eq!(ds.queries.len(), 10);
            assert_eq!(ds.data.dim(), id.dim());
            if id.is_byte() {
                for &v in ds.data.flat().iter().take(1000) {
                    assert_eq!(v, v.round(), "{} must be byte-valued", id.name());
                    assert!((0.0..=255.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn radius_counts_roughly_track_table4() {
        // Table 4: GIST and RAND have few radii (4), MNIST and SIFT many
        // (13, 11). Our schedule counts include R = 1, so compare coarsely.
        use e2lsh_core::params::radius_schedule;
        let r = |id: DatasetId| {
            let ds = load_sized(id, 2000, 1);
            radius_schedule(2.0, ds.data.max_abs_coord(), ds.data.dim()).len()
        };
        let gist = r(DatasetId::Gist);
        let rand = r(DatasetId::Rand);
        let sift = r(DatasetId::Sift);
        let mnist = r(DatasetId::Mnist);
        assert!(gist <= 7, "GIST radii {gist}");
        assert!(rand <= 7, "RAND radii {rand}");
        assert!(sift >= 10, "SIFT radii {sift}");
        assert!(mnist >= 10, "MNIST radii {mnist}");
    }

    #[test]
    fn seeds_stable() {
        let a = load_sized(DatasetId::Sift, 100, 5);
        let b = load_sized(DatasetId::Sift, 100, 5);
        assert_eq!(a.data.flat(), b.data.flat());
        assert_eq!(a.queries.flat(), b.queries.flat());
    }

    #[test]
    fn hardness_ordering_matches_table1() {
        // GAUSS must be harder (smaller RC) than SIFT/MSONG.
        use crate::ground_truth::GroundTruth;
        use crate::hardness::relative_contrast;
        let rc = |id: DatasetId| {
            let ds = load_sized(id, 3000, 15);
            let gt = GroundTruth::compute(&ds.data, &ds.queries, 1);
            relative_contrast(&ds.data, &ds.queries, &gt)
        };
        let rc_gauss = rc(DatasetId::Gauss);
        let rc_msong = rc(DatasetId::Msong);
        let rc_rand = rc(DatasetId::Rand);
        assert!(
            rc_msong > rc_rand && rc_rand > rc_gauss,
            "RC ordering: MSONG {rc_msong} > RAND {rc_rand} > GAUSS {rc_gauss}"
        );
    }
}
