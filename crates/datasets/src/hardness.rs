//! Dataset-hardness proxies reported in the paper's Table 1.
//!
//! * **Relative Contrast** (He et al., ICML 2012): `RC = D_mean / D_nn`,
//!   the ratio of the mean distance from a query to the database over the
//!   nearest-neighbor distance. Smaller RC ⇒ harder dataset.
//! * **Local Intrinsic Dimensionality** (Amsaleg et al., KDD 2015): the
//!   maximum-likelihood estimator
//!   `LID(q) = −(1/k · Σ_{i<k} ln(r_i / r_k))^{-1}` over the k nearest
//!   neighbor distances `r_1 ≤ … ≤ r_k`. Larger LID ⇒ harder dataset.

use crate::ground_truth::GroundTruth;
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist;

/// Estimate relative contrast over a query sample.
///
/// For each query, the mean distance to all database points is divided by
/// the exact nearest-neighbor distance; the estimate is the mean of these
/// per-query ratios.
pub fn relative_contrast(dataset: &Dataset, queries: &Dataset, gt: &GroundTruth) -> f64 {
    assert!(gt.num_queries() >= queries.len());
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let mut sum = 0.0f64;
        for oid in 0..dataset.len() {
            sum += dist(q, dataset.point(oid)) as f64;
        }
        let mean = sum / dataset.len() as f64;
        let nn = gt.dist(qi, 0) as f64;
        if nn > 1e-9 {
            acc += mean / nn;
            used += 1;
        }
    }
    if used == 0 {
        f64::INFINITY
    } else {
        acc / used as f64
    }
}

/// Maximum-likelihood LID estimate averaged over queries, using the top-`k`
/// ground-truth distances (`k = gt.k()`; the literature typically uses
/// k around 20–100).
pub fn local_intrinsic_dimensionality(gt: &GroundTruth) -> f64 {
    let k = gt.k();
    assert!(k >= 2, "LID estimation needs at least 2 neighbors");
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for qi in 0..gt.num_queries() {
        let r_k = gt.dist(qi, k - 1) as f64;
        if r_k <= 1e-12 {
            continue;
        }
        let mut s = 0.0f64;
        let mut cnt = 0usize;
        for i in 0..k - 1 {
            let r_i = gt.dist(qi, i) as f64;
            if r_i > 1e-12 {
                s += (r_i / r_k).ln();
                cnt += 1;
            }
        }
        if cnt > 0 && s < -1e-12 {
            acc += -(cnt as f64) / s;
            used += 1;
        }
    }
    if used == 0 {
        0.0
    } else {
        acc / used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ClusteredSpec, Generator};

    #[test]
    fn clustered_easier_than_gaussian() {
        // Clustered data has higher RC and lower LID than a single
        // isotropic Gaussian of similar scale — the pattern of Table 1
        // (SIFT RC 3.2 / LID 21.7 vs GAUSS RC 1.14 / LID 147).
        let dim = 24;
        let clustered = Generator::Clustered(ClusteredSpec {
            n_clusters: 10,
            cluster_std: 1.0,
            center_lo: 0.0,
            center_hi: 50.0,
            sparsity: 0.0,
            byte_quantize: false,
        });
        let gauss = Generator::Gaussian { std: 10.0 };

        let eval = |g: &Generator| {
            let (data, queries) = g.generate_with_queries(2000, 20, dim, 3);
            let gt = GroundTruth::compute(&data, &queries, 10);
            (
                relative_contrast(&data, &queries, &gt),
                local_intrinsic_dimensionality(&gt),
            )
        };
        let (rc_c, lid_c) = eval(&clustered);
        let (rc_g, lid_g) = eval(&gauss);
        assert!(rc_c > rc_g, "clustered RC {rc_c} vs gauss {rc_g}");
        assert!(lid_c < lid_g, "clustered LID {lid_c} vs gauss {lid_g}");
        assert!(rc_g > 1.0, "RC is always > 1 by definition");
    }

    #[test]
    fn lid_of_uniform_line_is_about_one() {
        // Points on a 1-D manifold embedded in 4-D must have LID ≈ 1.
        let rows: Vec<Vec<f32>> = (0..3000)
            .map(|i| {
                let t = i as f32 * 0.01;
                vec![t, 0.0, 0.0, 0.0]
            })
            .collect();
        let ds = Dataset::from_rows(&rows);
        let queries = Dataset::from_rows(&rows[100..110]);
        let gt = GroundTruth::compute(&ds, &queries, 20);
        let lid = local_intrinsic_dimensionality(&gt);
        assert!(lid < 2.0, "line LID {lid}");
    }
}
