//! p-stable LSH functions and compound hashes (paper Section 2.2–2.3).
//!
//! A single hash function is `h(o) = ⌊(a·o + b)/w⌋` (Equation 1) with `a`
//! drawn from N(0,1)^d and `b` uniform on `[0, w)`. A compound hash
//! `g(o) = (h_1(o), …, h_m(o))` (Equation 4) concatenates `m` functions; the
//! tuple is mixed into a 64-bit value that addresses a bucket.
//!
//! Radius scaling: the `(R, c)`-NN instance at radius `R` hashes the point
//! `o/R`, i.e. `h_R(o) = ⌊(a·o/R + b)/w⌋`, so the same `(w, c)` collision
//! probabilities `p1 = p_w(1)`, `p2 = p_w(c)` apply at every radius.

use crate::distance::dot;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A compound hash `g(o) = (h_1(o), …, h_m(o))`: `m` p-stable functions that
/// share a bucket width `w` and are evaluated together.
///
/// The projection vectors are stored row-major (`m × d`) so that evaluating
/// all `m` functions streams the point once per function with vectorized
/// inner loops.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompoundHash {
    dim: usize,
    m: usize,
    w: f32,
    /// `m × d` row-major N(0,1) projection vectors.
    a: Vec<f32>,
    /// `m` uniform offsets in `[0, w)`.
    b: Vec<f32>,
}

impl CompoundHash {
    /// Draw a fresh compound hash from `rng`.
    pub fn generate<R: Rng>(dim: usize, m: usize, w: f32, rng: &mut R) -> Self {
        assert!(dim > 0 && m > 0 && w > 0.0);
        let mut a = Vec::with_capacity(m * dim);
        for _ in 0..m * dim {
            a.push(sample_standard_normal(rng));
        }
        let b = (0..m).map(|_| rng.gen::<f32>() * w).collect();
        Self { dim, m, w, a, b }
    }

    /// Number of constituent hash functions `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bucket width `w`.
    #[inline]
    pub fn w(&self) -> f32 {
        self.w
    }

    /// Evaluate all `m` hash values for `point` at search radius `radius`,
    /// appending them to `out` (cleared first).
    pub fn eval_into(&self, point: &[f32], radius: f32, out: &mut Vec<i32>) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        assert!(radius > 0.0);
        out.clear();
        let inv_r = 1.0 / radius;
        for j in 0..self.m {
            let row = &self.a[j * self.dim..(j + 1) * self.dim];
            let proj = dot(row, point) * inv_r;
            out.push(((proj + self.b[j]) / self.w).floor() as i32);
        }
    }

    /// Evaluate and mix into a single 64-bit bucket key.
    pub fn hash64(&self, point: &[f32], radius: f32, scratch: &mut Vec<i32>) -> u64 {
        self.eval_into(point, radius, scratch);
        mix_hash_values(scratch)
    }

    /// Like [`CompoundHash::eval_into`] but also records, per component,
    /// the fractional position of the projection inside its bucket
    /// (`frac ∈ [0, 1)`). Multi-probe LSH (Lv et al., VLDB 2007) uses it
    /// to rank perturbations: projections near a bucket boundary are
    /// cheap to flip across it.
    pub fn eval_with_frac(
        &self,
        point: &[f32],
        radius: f32,
        out: &mut Vec<i32>,
        frac: &mut Vec<f32>,
    ) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        assert!(radius > 0.0);
        out.clear();
        frac.clear();
        let inv_r = 1.0 / radius;
        for j in 0..self.m {
            let row = &self.a[j * self.dim..(j + 1) * self.dim];
            let scaled = (dot(row, point) * inv_r + self.b[j]) / self.w;
            let h = scaled.floor();
            out.push(h as i32);
            frac.push(scaled - h);
        }
    }

    /// Total number of f32 multiply-adds one evaluation performs (used for
    /// compute-cost calibration).
    pub fn flops(&self) -> usize {
        self.m * self.dim
    }
}

/// Mix a tuple of hash values into a 64-bit bucket key.
///
/// This plays the role of the E2LSH package's universal hashes `H1`/`H2`:
/// the full mixed value identifies the compound hash tuple, the storage
/// layer then splits it into a `u`-bit table index and fingerprint bits
/// (paper Section 5.2).
#[inline]
pub fn mix_hash_values(values: &[i32]) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3u64 ^ (values.len() as u64);
    for &v in values {
        h = crate::fxhash::splitmix64(h ^ (v as u32 as u64));
    }
    h
}

/// Truncate a 64-bit bucket key to the `v`-bit hash value used on storage
/// (the paper uses `v = 32`).
#[inline]
pub fn hash_v_bits(h64: u64, v: u32) -> u64 {
    debug_assert!((1..=64).contains(&v));
    if v == 64 {
        h64
    } else {
        h64 & ((1u64 << v) - 1)
    }
}

/// Draw one standard normal variate (Marsaglia polar method).
///
/// `rand` 0.8 without `rand_distr` has no normal sampler; the polar method
/// needs only `gen::<f32>()` and is plenty fast for index construction.
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u = rng.gen::<f32>() * 2.0 - 1.0;
        let v = rng.gen::<f32>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The full family of compound hashes for an E2LSH index: `L` compounds per
/// radius for `r` radii, generated deterministically from a master seed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HashFamily {
    dim: usize,
    m: usize,
    w: f32,
    l: usize,
    radii: Vec<f32>,
    /// `[radius_idx][l]`.
    compounds: Vec<Vec<CompoundHash>>,
    seed: u64,
}

impl HashFamily {
    /// Generate the family. Each `(radius, l)` compound gets an independent
    /// deterministic sub-seed so indices are reproducible and the storage
    /// index can regenerate exactly the same functions from the superblock.
    pub fn generate(dim: usize, m: usize, w: f32, l: usize, radii: &[f32], seed: u64) -> Self {
        assert!(!radii.is_empty());
        let mut compounds = Vec::with_capacity(radii.len());
        for (ri, _) in radii.iter().enumerate() {
            let mut per_radius = Vec::with_capacity(l);
            for li in 0..l {
                let sub = crate::fxhash::splitmix64(
                    seed ^ ((ri as u64) << 32) ^ (li as u64) ^ SUBSEED_SALT,
                );
                let mut rng = ChaCha8Rng::seed_from_u64(sub);
                per_radius.push(CompoundHash::generate(dim, m, w, &mut rng));
            }
            compounds.push(per_radius);
        }
        Self {
            dim,
            m,
            w,
            l,
            radii: radii.to_vec(),
            compounds,
            seed,
        }
    }

    /// Number of radii `r`.
    #[inline]
    pub fn num_radii(&self) -> usize {
        self.radii.len()
    }

    /// Radius value for radius index `ri`.
    #[inline]
    pub fn radius(&self, ri: usize) -> f32 {
        self.radii[ri]
    }

    /// All radii.
    #[inline]
    pub fn radii(&self) -> &[f32] {
        &self.radii
    }

    /// Number of compound hashes per radius `L`.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Functions per compound `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Master seed the family was generated from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The compound hash for `(radius index, l)`.
    #[inline]
    pub fn compound(&self, ri: usize, li: usize) -> &CompoundHash {
        &self.compounds[ri][li]
    }

    /// Compute the 64-bit bucket keys of `point` for every `l` at radius
    /// `ri`, into `out`.
    pub fn keys_at_radius(
        &self,
        point: &[f32],
        ri: usize,
        scratch: &mut Vec<i32>,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        let r = self.radii[ri];
        for li in 0..self.l {
            out.push(self.compounds[ri][li].hash64(point, r, scratch));
        }
    }
}

/// Salt mixed into per-(radius, l) sub-seeds so that families generated from
/// nearby master seeds do not share hash functions.
const SUBSEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn eval_deterministic() {
        let mut r = rng();
        let ch = CompoundHash::generate(8, 4, 4.0, &mut r);
        let p: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        ch.eval_into(&p, 1.0, &mut o1);
        ch.eval_into(&p, 1.0, &mut o2);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 4);
    }

    #[test]
    fn nearby_points_often_collide_far_points_rarely() {
        let mut r = rng();
        let dim = 16;
        let w = 4.0;
        let trials = 300;
        let mut near_coll = 0;
        let mut far_coll = 0;
        let mut scratch = Vec::new();
        for _ in 0..trials {
            let ch = CompoundHash::generate(dim, 1, w, &mut r);
            let p: Vec<f32> = (0..dim)
                .map(|_| sample_standard_normal(&mut r) * 3.0)
                .collect();
            // near: distance 0.5; far: distance 8.
            let mut near = p.clone();
            near[0] += 0.5;
            let mut far = p.clone();
            far[0] += 8.0;
            let hp = ch.hash64(&p, 1.0, &mut scratch);
            if ch.hash64(&near, 1.0, &mut scratch) == hp {
                near_coll += 1;
            }
            if ch.hash64(&far, 1.0, &mut scratch) == hp {
                far_coll += 1;
            }
        }
        assert!(
            near_coll > far_coll + trials / 10,
            "near {near_coll} far {far_coll}"
        );
    }

    #[test]
    fn radius_scaling_widens_buckets() {
        // At a huge radius everything collapses into few buckets.
        let mut r = rng();
        let ch = CompoundHash::generate(4, 2, 4.0, &mut r);
        let mut scratch = Vec::new();
        let a = [0.0f32, 0.0, 0.0, 0.0];
        let b = [5.0f32, -3.0, 2.0, 1.0];
        assert_ne!(
            ch.hash64(&a, 0.01, &mut scratch),
            ch.hash64(&b, 0.01, &mut scratch),
            "tiny radius must separate distant points"
        );
        assert_eq!(
            ch.hash64(&a, 1e9, &mut scratch),
            ch.hash64(&b, 1e9, &mut scratch),
            "huge radius must merge everything"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let x = sample_standard_normal(&mut r) as f64;
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mix_sensitive_to_every_position() {
        let base = vec![1, 2, 3, 4];
        let h = mix_hash_values(&base);
        for i in 0..4 {
            let mut v = base.clone();
            v[i] += 1;
            assert_ne!(mix_hash_values(&v), h, "position {i} must matter");
        }
        // Length must matter too.
        assert_ne!(mix_hash_values(&[1, 2, 3]), mix_hash_values(&[1, 2, 3, 0]));
    }

    #[test]
    fn hash_v_bits_truncates() {
        let h = 0xdead_beef_dead_beefu64;
        assert_eq!(hash_v_bits(h, 32), 0xdead_beef);
        assert_eq!(hash_v_bits(h, 64), h);
        assert_eq!(hash_v_bits(h, 8), 0xef);
    }

    #[test]
    fn family_reproducible() {
        let radii = [1.0f32, 2.0, 4.0];
        let f1 = HashFamily::generate(8, 3, 4.0, 5, &radii, 99);
        let f2 = HashFamily::generate(8, 3, 4.0, 5, &radii, 99);
        let p: Vec<f32> = (0..8).map(|i| (i as f32).cos()).collect();
        let mut s = Vec::new();
        let (mut k1, mut k2) = (Vec::new(), Vec::new());
        for ri in 0..3 {
            f1.keys_at_radius(&p, ri, &mut s, &mut k1);
            f2.keys_at_radius(&p, ri, &mut s, &mut k2);
            assert_eq!(k1, k2);
            assert_eq!(k1.len(), 5);
        }
        // Different seed gives different functions.
        let f3 = HashFamily::generate(8, 3, 4.0, 5, &radii, 100);
        f3.keys_at_radius(&p, 0, &mut s, &mut k2);
        f1.keys_at_radius(&p, 0, &mut s, &mut k1);
        assert_ne!(k1, k2);
    }
}
