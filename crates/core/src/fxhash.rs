//! A minimal Fx-style hasher for integer-keyed hash maps.
//!
//! The default SipHash hasher of `std::collections::HashMap` is needlessly
//! slow for the integer keys used throughout this workspace (compound hash
//! values, object IDs). This is the same multiply-rotate construction used
//! by `rustc-hash`, reimplemented here because that crate is not on the
//! approved dependency list. HashDoS resistance is irrelevant: all keys are
//! produced internally.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher over machine words (Fx algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// One round of splitmix64: a fast, well-distributed 64-bit finalizer.
///
/// Used to turn compound hash values into bucket addresses (see
/// [`crate::lsh::mix_hash_values`]) and as a tiny deterministic RNG for
/// tests.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn splitmix_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn splitmix_avalanche_rough() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        for i in 0..256u64 {
            let a = splitmix64(i);
            let b = splitmix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 256.0;
        assert!(avg > 24.0 && avg < 40.0, "avalanche avg {avg}");
    }

    #[test]
    fn hasher_differs_on_write_order() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
    }
}
