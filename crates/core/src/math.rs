//! Special functions used by LSH collision-probability formulas and by the
//! baseline methods (SRS needs the chi-square CDF, QALSH needs the normal
//! CDF).
//!
//! All functions are implemented from scratch (no external special-function
//! crate is available offline). Accuracy is ~1e-7 relative, which is far
//! more than the parameter-derivation code paths need.

/// Complementary error function `erfc(x)`.
///
/// Rational Chebyshev approximation (Numerical Recipes §6.2); fractional
/// error everywhere less than `1.2e-7`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const ITMAX: usize = 200;
    const EPS: f64 = 3.0e-14;
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..ITMAX {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const ITMAX: usize = 200;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=ITMAX {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Chi-square CDF with `k` degrees of freedom: `P(X ≤ x)`.
///
/// SRS (Sun et al., VLDB 2014) uses this for its early-termination test: the
/// squared length of an m-dimensional Gaussian projection of a unit vector
/// follows a chi-square distribution with m degrees of freedom.
pub fn chi2_cdf(k: usize, x: f64) -> f64 {
    assert!(k > 0, "chi2_cdf requires k > 0");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k as f64 / 2.0, x / 2.0)
}

/// Inverse of [`normal_cdf`] by bisection, for test/verification use.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    let (mut lo, mut hi) = (-40.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        // The rational approximation has ~1.2e-7 absolute error everywhere.
        assert_close(erf(0.0), 0.0, 2e-7);
        assert_close(erf(1.0), 0.8427007929497149, 2e-7);
        assert_close(erf(2.0), 0.9953222650189527, 2e-7);
        assert_close(erf(-1.0), -0.8427007929497149, 2e-7);
        assert_close(erf(0.5), 0.5204998778130465, 2e-7);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.0, 0.3, 1.7, 3.2] {
            assert_close(erfc(x) + erfc(-x), 2.0, 5e-7);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(normal_cdf(0.0), 0.5, 2e-7);
        assert_close(normal_cdf(1.0), 0.8413447460685429, 2e-7);
        assert_close(normal_cdf(-1.96), 0.024997895148220435, 2e-7);
        assert_close(normal_cdf(3.0), 0.9986501019683699, 2e-7);
    }

    #[test]
    fn normal_cdf_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = normal_cdf(x);
            assert!(v >= prev);
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-9);
        assert_close(ln_gamma(2.0), 0.0, 1e-9);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-9);
        assert_close(ln_gamma(11.0), (3628800.0f64).ln(), 1e-8);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-9);
    }

    #[test]
    fn gamma_p_limits() {
        assert_close(gamma_p(1.5, 0.0), 0.0, 1e-12);
        assert_close(gamma_p(1.5, 100.0), 1.0, 1e-9);
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.5, 7.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-9);
        }
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.3, 10.0] {
            for &x in &[0.2, 1.0, 5.0, 20.0] {
                assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-9);
            }
        }
    }

    #[test]
    fn chi2_cdf_known_values() {
        // Chi-square with 2 dof is Exp(1/2): P(X<=x) = 1 - exp(-x/2).
        for &x in &[0.5, 1.0, 3.0, 8.0] {
            assert_close(chi2_cdf(2, x), 1.0 - (-x / 2.0f64).exp(), 1e-9);
        }
        // Median of chi-square k=1 is ~0.4549.
        assert_close(chi2_cdf(1, 0.45493642311957283), 0.5, 1e-6);
    }

    #[test]
    fn chi2_cdf_monotone_in_x_and_k() {
        assert!(chi2_cdf(4, 2.0) < chi2_cdf(4, 3.0));
        // At fixed x, more dof means smaller CDF.
        assert!(chi2_cdf(8, 5.0) < chi2_cdf(4, 5.0));
    }

    #[test]
    fn quantile_roundtrip() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.975] {
            let x = normal_quantile(p);
            assert_close(normal_cdf(x), p, 1e-7);
        }
    }
}
