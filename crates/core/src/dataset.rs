//! Flat storage for a database of `n` points in `d` dimensions.
//!
//! The paper keeps object coordinates in DRAM for all methods (Section 3);
//! only the hash index moves to storage. This container mirrors that:
//! points are stored contiguously (`n × d` f32 values) so distance checks
//! stream through memory.

use serde::{Deserialize, Serialize};

/// A database of `n` points, each a `d`-dimensional `f32` vector, stored in
/// one contiguous row-major buffer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Create a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Create a dataset from per-point rows (all rows must share a length).
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "dataset must be non-empty");
        let dim = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), dim, "all rows must have the same dimension");
            data.extend_from_slice(r);
        }
        Self { dim, data }
    }

    /// An empty dataset shell with capacity for `n` points (for streaming
    /// construction via [`Dataset::push`]).
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0);
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Append one point.
    pub fn push(&mut self, point: &[f32]) {
        assert_eq!(point.len(), self.dim);
        self.data.extend_from_slice(point);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Point dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        let s = i * self.dim;
        &self.data[s..s + self.dim]
    }

    /// The raw flat buffer.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Maximum absolute coordinate value `x_max`, used for the maximum
    /// search radius `R_max = 2·x_max·√d` (paper Section 2.3).
    pub fn max_abs_coord(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Restrict to the first `n` points (used by the database-size scaling
    /// experiment, Figure 14). Returns a borrowed-copy prefix dataset.
    pub fn prefix(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            dim: self.dim,
            data: self.data[..n * self.dim].to_vec(),
        }
    }

    /// Size of the raw coordinate data in bytes (what the paper calls the
    /// "database size" held in DRAM).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, -4.5]];
        let ds = Dataset::from_rows(&rows);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0]);
        assert_eq!(ds.point(1), &[3.0, -4.5]);
        assert_eq!(ds.max_abs_coord(), 4.5);
    }

    #[test]
    fn push_and_prefix() {
        let mut ds = Dataset::with_capacity(3, 4);
        for i in 0..4 {
            ds.push(&[i as f32, 0.0, -(i as f32)]);
        }
        assert_eq!(ds.len(), 4);
        let p = ds.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.point(1), &[1.0, 0.0, -1.0]);
        // Prefix larger than the dataset clamps.
        assert_eq!(ds.prefix(100).len(), 4);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn mismatched_rows_panic() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0]];
        let _ = Dataset::from_rows(&rows);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_flat_panics() {
        let _ = Dataset::from_flat(3, vec![0.0; 7]);
    }

    #[test]
    fn nbytes() {
        let ds = Dataset::from_flat(4, vec![0.0; 40]);
        assert_eq!(ds.nbytes(), 160);
        assert_eq!(ds.len(), 10);
    }
}
