//! E2LSH parameter derivation (paper Sections 2.3 and 3.3).
//!
//! With collision probability `p_w(s)` for two points at distance `s`, set
//! `p1 = p_w(1)` and `p2 = p_w(c)` (distances are normalized by the current
//! search radius). Then Equation 5 gives
//!
//! ```text
//! m = log_{1/p2} n,    L = n^ρ,    S = 2L,    ρ = ln(1/p1)/ln(1/p2) < 1
//! ```
//!
//! for a success probability of `1/2 − 1/e`. The paper fine-tunes accuracy
//! with a scaling factor `γ` on `m` (`m = γ·log_{1/p2} n`), which leaves the
//! index size (`L`) unchanged; `γ > ρ` preserves the sublinear query time.
//!
//! The radius schedule for the `c²`-ANNS reduction is `R = 1, c, c², …` up
//! to `R_max = 2·x_max·√d`, so `r = ⌈log_c R_max⌉` radii (independent of n).

use crate::math::normal_cdf;
use serde::{Deserialize, Serialize};

/// Collision probability `p_w(s)` of one p-stable hash `h(o)=⌊(a·o+b)/w⌋`
/// for two points at Euclidean distance `s` (Datar et al. 2004):
///
/// `p_w(s) = 1 − 2Φ(−w/s) − (2s/(√(2π)·w))·(1 − exp(−w²/(2s²)))`.
///
/// Monotonically decreasing in `s`, increasing in `w`.
pub fn collision_probability(w: f64, s: f64) -> f64 {
    assert!(w > 0.0 && s >= 0.0);
    if s == 0.0 {
        return 1.0;
    }
    let t = w / s;
    let term1 = 1.0 - 2.0 * normal_cdf(-t);
    let term2 = 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * t) * (1.0 - (-t * t / 2.0).exp());
    (term1 - term2).clamp(0.0, 1.0)
}

/// The complete parameter set of an E2LSH / E2LSHoS index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct E2lshParams {
    /// Approximation ratio `c` (the paper uses `c = 2`; the reduction
    /// solves `c²`-ANNS).
    pub c: f32,
    /// Bucket width `w` controlling `ρ`.
    pub w: f32,
    /// Accuracy scaling factor `γ` on `m` (paper Section 3.3).
    pub gamma: f32,
    /// Database size the parameters were derived for.
    pub n: usize,
    /// Functions per compound hash, `m = ⌈γ·ln n / ln(1/p2)⌉`.
    pub m: usize,
    /// Number of compound hashes per radius, `L = ⌈n^ρ⌉`.
    pub l: usize,
    /// Candidate budget per radius, `S = s_factor·L` (Equation 5 uses 2L).
    pub s: usize,
    /// `ρ = ln(1/p1)/ln(1/p2)`.
    pub rho: f64,
    /// Collision probability at distance 1 (radius-normalized), `p_w(1)`.
    pub p1: f64,
    /// Collision probability at distance `c`, `p_w(c)`.
    pub p2: f64,
    /// Radius schedule `1, c, c², …, c^{r-1}` covering `R_max`.
    pub radii: Vec<f32>,
}

impl E2lshParams {
    /// Derive parameters per Equation 5 with the paper's default
    /// `S = 2L` and success probability `1/2 − 1/e`.
    ///
    /// * `n` — database size;
    /// * `c` — approximation ratio (paper: 2);
    /// * `w` — bucket width (controls ρ; the E2LSH package default is 4);
    /// * `gamma` — accuracy scaling on `m` (1.0 = Equation 5 exactly);
    /// * `x_max` — maximum absolute coordinate, for `R_max = 2·x_max·√d`;
    /// * `dim` — point dimensionality.
    pub fn derive(n: usize, c: f32, w: f32, gamma: f32, x_max: f32, dim: usize) -> Self {
        Self::derive_with(n, c, w, gamma, x_max, dim, 2.0, None)
    }

    /// Practical derivation used throughout the paper's evaluation
    /// (Section 3.3): `L = ⌈n^ρ_target⌉` for a *chosen* effective exponent
    /// (the paper's Table 4 has L between 16 and 51 even at n = 10⁸,
    /// i.e. effective ρ ≈ 0.21), with `m = γ·log_{1/p2} n` trading
    /// accuracy against compute without touching the index size.
    pub fn derive_practical(
        n: usize,
        c: f32,
        w: f32,
        gamma: f32,
        rho_target: f64,
        x_max: f32,
        dim: usize,
    ) -> Self {
        assert!(rho_target > 0.0 && rho_target < 1.0);
        let l = (n as f64).powf(rho_target).ceil().max(2.0) as usize;
        Self::derive_with(n, c, w, gamma, x_max, dim, 2.0, Some(l))
    }

    /// Full-control variant: `s_factor` scales the candidate budget
    /// (`S = s_factor·L`), and `l_override` pins `L` (used by the paper's
    /// "small ρ" in-memory configuration in Figure 14).
    #[allow(clippy::too_many_arguments)]
    pub fn derive_with(
        n: usize,
        c: f32,
        w: f32,
        gamma: f32,
        x_max: f32,
        dim: usize,
        s_factor: f64,
        l_override: Option<usize>,
    ) -> Self {
        assert!(n >= 2, "need at least two objects");
        assert!(c > 1.0, "approximation ratio must exceed 1");
        assert!(w > 0.0 && gamma > 0.0 && x_max > 0.0 && dim > 0);
        let p1 = collision_probability(w as f64, 1.0);
        let p2 = collision_probability(w as f64, c as f64);
        assert!(p1 > p2, "collision probabilities must separate");
        let ln_n = (n as f64).ln();
        let rho = (1.0 / p1).ln() / (1.0 / p2).ln();
        let m = ((gamma as f64) * ln_n / (1.0 / p2).ln()).ceil().max(1.0) as usize;
        let l = l_override.unwrap_or_else(|| (n as f64).powf(rho).ceil().max(1.0) as usize);
        let s = ((s_factor * l as f64).ceil() as usize).max(1);
        let radii = radius_schedule(c, x_max, dim);
        Self {
            c,
            w,
            gamma,
            n,
            m,
            l,
            s,
            rho,
            p1,
            p2,
            radii,
        }
    }

    /// Number of radii `r` in the schedule.
    #[inline]
    pub fn num_radii(&self) -> usize {
        self.radii.len()
    }

    /// Candidate budget for a top-`k` query. The paper keeps `S = 2L` for
    /// `k = 1`; for larger `k` the budget must grow so that enough distinct
    /// candidates are examined (we scale linearly, floored at `S`).
    pub fn s_for_k(&self, k: usize) -> usize {
        self.s.max(self.s / 2 * k)
    }
}

/// Build the radius schedule `1, c, c², …` up to and including the first
/// value ≥ `R_max = 2·x_max·√d` (paper Section 2.3).
pub fn radius_schedule(c: f32, x_max: f32, dim: usize) -> Vec<f32> {
    assert!(c > 1.0 && x_max > 0.0 && dim > 0);
    let r_max = 2.0 * x_max * (dim as f32).sqrt();
    let mut radii = vec![1.0f32];
    while *radii.last().expect("non-empty") < r_max {
        let next = radii.last().expect("non-empty") * c;
        radii.push(next);
        if radii.len() > 64 {
            break; // guard against pathological inputs
        }
    }
    radii
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_probability_limits() {
        assert_eq!(collision_probability(4.0, 0.0), 1.0);
        // Very small distance relative to w: near-certain collision.
        assert!(collision_probability(4.0, 1e-6) > 0.999);
        // Very large distance: near-zero collision.
        assert!(collision_probability(4.0, 1e6) < 1e-3);
    }

    #[test]
    fn collision_probability_monotone_decreasing_in_s() {
        let mut prev = 1.0;
        let mut s = 0.01;
        while s < 50.0 {
            let p = collision_probability(4.0, s);
            assert!(p <= prev + 1e-12, "p_w(s) must decrease, s={s}");
            prev = p;
            s *= 1.3;
        }
    }

    #[test]
    fn collision_probability_monotone_increasing_in_w() {
        let mut prev = 0.0;
        for wi in 1..40 {
            let w = wi as f64 * 0.5;
            let p = collision_probability(w, 2.0);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn closed_form_matches_numerical_integration() {
        // Datar et al. define p_w(s) = ∫_0^w (2/s)·φ(t/s)·(1 − t/w) dt.
        // Integrate numerically and compare with the closed form.
        fn numeric(w: f64, s: f64) -> f64 {
            let steps = 20_000;
            let h = w / steps as f64;
            let mut sum = 0.0;
            for i in 0..steps {
                let t = (i as f64 + 0.5) * h;
                sum += (2.0 / s) * crate::math::normal_pdf(t / s) * (1.0 - t / w) * h;
            }
            sum
        }
        for &(w, s) in &[(4.0, 1.0), (4.0, 2.0), (2.0, 1.0), (8.0, 3.0), (1.0, 0.3)] {
            let closed = collision_probability(w, s);
            let num = numeric(w, s);
            assert!(
                (closed - num).abs() < 1e-4,
                "w={w} s={s}: closed {closed} vs numeric {num}"
            );
        }
        // Known value: for w = 4, p_w(1) ≈ 0.8005 and p_w(2) ≈ 0.6095.
        assert!((collision_probability(4.0, 1.0) - 0.8005).abs() < 1e-3);
        assert!((collision_probability(4.0, 2.0) - 0.6095).abs() < 1e-3);
    }

    #[test]
    fn derive_matches_equation5() {
        let p = E2lshParams::derive(100_000, 2.0, 4.0, 1.0, 10.0, 64);
        assert!(p.rho > 0.0 && p.rho < 1.0);
        assert_eq!(p.s, 2 * p.l);
        // L = ceil(n^rho)
        assert_eq!(p.l, (100_000f64.powf(p.rho)).ceil() as usize);
        // m = ceil(ln n / ln(1/p2))
        let expect_m = ((100_000f64).ln() / (1.0 / p.p2).ln()).ceil() as usize;
        assert_eq!(p.m, expect_m);
    }

    #[test]
    fn gamma_scales_m_not_l() {
        let a = E2lshParams::derive(50_000, 2.0, 4.0, 1.0, 10.0, 64);
        let b = E2lshParams::derive(50_000, 2.0, 4.0, 1.3, 10.0, 64);
        assert!(b.m > a.m);
        assert_eq!(a.l, b.l, "γ must not change the index size");
    }

    #[test]
    fn radius_schedule_covers_rmax() {
        let radii = radius_schedule(2.0, 10.0, 100);
        let r_max = 2.0 * 10.0 * (100f32).sqrt(); // 200
        assert!(*radii.last().unwrap() >= r_max);
        assert_eq!(radii[0], 1.0);
        for w in radii.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-6);
        }
        // r = ceil(log_c R_max) + 1 radii including R=1.
        assert_eq!(radii.len(), (200f32.log2().ceil() as usize) + 1);
    }

    #[test]
    fn l_override_pins_l() {
        let p = E2lshParams::derive_with(50_000, 2.0, 4.0, 1.0, 10.0, 64, 2.0, Some(4));
        assert_eq!(p.l, 4);
        assert_eq!(p.s, 8);
    }

    #[test]
    fn rho_bounded_and_separating_for_all_w() {
        // ρ = ln(1/p1)/ln(1/p2) must stay in (0, 1) and p1 > p2 for every
        // bucket width (ρ is not monotone in w: it dips below 1/c around
        // w ≈ 4 and approaches 1/c as w → ∞).
        for wi in 1..=32 {
            let w = wi as f32 * 0.5;
            let p = E2lshParams::derive(100_000, 2.0, w, 1.0, 10.0, 64);
            assert!(p.rho > 0.0 && p.rho < 1.0, "w={w} rho={}", p.rho);
            assert!(p.p1 > p.p2, "w={w}");
        }
        // ρ at the paper-style default w=4, c=2 is ≈ 0.449.
        let p = E2lshParams::derive(100_000, 2.0, 4.0, 1.0, 10.0, 64);
        assert!((p.rho - 0.449).abs() < 5e-3, "rho = {}", p.rho);
    }

    #[test]
    fn s_for_k_grows() {
        let p = E2lshParams::derive(10_000, 2.0, 4.0, 1.0, 5.0, 32);
        assert_eq!(p.s_for_k(1), p.s);
        assert!(p.s_for_k(100) >= p.s_for_k(10));
    }
}
