//! Euclidean distance kernels.
//!
//! The paper accelerates distance checking with AVX-512; here the kernels
//! are written as simple chunked loops that LLVM auto-vectorizes for the
//! target CPU. The experiment harness calibrates the *actual* cost of these
//! kernels at startup so the virtual-time engine charges real numbers.

/// Squared Euclidean distance between two equal-length vectors.
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dist2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    // Four accumulators break the add dependency chain and let LLVM emit
    // wide SIMD without `-ffast-math`-style reassociation.
    let mut acc = [0.0f32; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        for lane in 0..4 {
            let d = a[j + lane] - b[j + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    dist2(a, b).sqrt()
}

/// Dot product of two equal-length vectors (used by the LSH projection).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        for lane in 0..4 {
            acc[lane] += a[j + lane] * b[j + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Squared norm `‖a‖²`.
#[inline]
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dist2_zero() {
        let v = vec![1.5f32; 37];
        assert_eq!(dist2(&v, &v), 0.0);
    }

    #[test]
    fn dist2_matches_naive_for_odd_lengths() {
        for n in [1usize, 2, 3, 5, 7, 16, 17, 33, 100, 129] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos()).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let fast = dist2(&a, &b);
            assert!(
                (naive - fast).abs() <= 1e-4 * (1.0 + naive.abs()),
                "n={n}: naive {naive} fast {fast}"
            );
        }
    }

    #[test]
    fn dot_matches_naive() {
        for n in [1usize, 4, 5, 31, 64, 100] {
            let a: Vec<f32> = (0..n).map(|i| 0.1 * i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| 1.0 - 0.01 * i as f32).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() <= 1e-3 * (1.0 + naive.abs()));
        }
    }

    #[test]
    fn norm2_is_dot_self() {
        let a: Vec<f32> = (0..50).map(|i| i as f32 * 0.3).collect();
        assert_eq!(norm2(&a), dot(&a, &a));
    }

    #[test]
    fn triangle_inequality() {
        let a = vec![0.0f32; 8];
        let b: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let c: Vec<f32> = (0..8).map(|i| (i as f32) * -0.5).collect();
        assert!(dist(&a, &c) <= dist(&a, &b) + dist(&b, &c) + 1e-5);
    }
}
