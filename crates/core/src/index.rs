//! In-memory E2LSH index (the paper's "in-memory E2LSH" baseline).
//!
//! For each search radius `R ∈ {1, c, c², …}` and each compound hash
//! `l ∈ {1…L}` the index keeps a hash table mapping the mixed 64-bit
//! compound hash value of an object to the bucket (list of object IDs)
//! it belongs to — `r·L` tables in total, which is exactly the
//! `O(n^{1+ρ})` superlinear index the paper moves to storage.

use crate::dataset::Dataset;
use crate::fxhash::FxHashMap;
use crate::lsh::HashFamily;
use crate::params::E2lshParams;

/// One hash table: mixed compound-hash value → bucket of object IDs.
pub type Bucket = Vec<u32>;
pub type HashTable = FxHashMap<u64, Bucket>;

/// In-memory E2LSH index over a [`Dataset`].
pub struct MemIndex {
    params: E2lshParams,
    family: HashFamily,
    /// `[radius][l]` hash tables.
    tables: Vec<Vec<HashTable>>,
    n: usize,
}

impl MemIndex {
    /// Build the index: hash every object with every `(radius, l)` compound
    /// hash and insert it into the corresponding bucket (paper Section 2.3
    /// preprocessing).
    pub fn build(dataset: &Dataset, params: &E2lshParams, seed: u64) -> Self {
        let family = HashFamily::generate(
            dataset.dim(),
            params.m,
            params.w,
            params.l,
            &params.radii,
            seed,
        );
        Self::build_with_family(dataset, params, family)
    }

    /// Build with an already-generated hash family (shared with a storage
    /// index so both produce identical buckets).
    pub fn build_with_family(dataset: &Dataset, params: &E2lshParams, family: HashFamily) -> Self {
        assert_eq!(family.dim(), dataset.dim());
        assert_eq!(family.l(), params.l);
        assert!(
            dataset.len() <= u32::MAX as usize,
            "object IDs are u32 (paper stores 4-byte IDs)"
        );
        let r = family.num_radii();
        let mut tables: Vec<Vec<HashTable>> = Vec::with_capacity(r);
        let mut scratch = Vec::new();
        for ri in 0..r {
            let radius = family.radius(ri);
            let mut per_radius: Vec<HashTable> = Vec::with_capacity(params.l);
            for li in 0..params.l {
                let compound = family.compound(ri, li);
                let mut table: HashTable = HashTable::default();
                for oid in 0..dataset.len() {
                    let key = compound.hash64(dataset.point(oid), radius, &mut scratch);
                    table.entry(key).or_default().push(oid as u32);
                }
                per_radius.push(table);
            }
            tables.push(per_radius);
        }
        Self {
            params: params.clone(),
            family,
            tables,
            n: dataset.len(),
        }
    }

    /// Parameters the index was built with.
    #[inline]
    pub fn params(&self) -> &E2lshParams {
        &self.params
    }

    /// The hash family (shared with storage indices for equivalence tests).
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no objects are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Look up the bucket for bucket key `key` at `(radius index, l)`.
    #[inline]
    pub fn bucket(&self, ri: usize, li: usize, key: u64) -> Option<&Bucket> {
        self.tables[ri][li].get(&key)
    }

    /// Iterate over all buckets of table `(ri, li)` (used by the storage
    /// index builder and by bucket-occupancy statistics).
    pub fn buckets(&self, ri: usize, li: usize) -> impl Iterator<Item = (&u64, &Bucket)> {
        self.tables[ri][li].iter()
    }

    /// Number of non-empty buckets in table `(ri, li)`.
    pub fn bucket_count(&self, ri: usize, li: usize) -> usize {
        self.tables[ri][li].len()
    }

    /// Approximate DRAM footprint of the index in bytes: object IDs stored
    /// in buckets plus hash-map entry overhead. This is the quantity the
    /// paper's Table 6 would report for in-memory E2LSH.
    pub fn index_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for per_radius in &self.tables {
            for table in per_radius {
                // Per entry: key (8) + Vec header (24) + ids (4 each);
                // hashbrown control bytes ≈ 1.1/entry amortized.
                bytes += table.len() * (8 + 24 + 2);
                for b in table.values() {
                    bytes += b.len() * 4;
                }
            }
        }
        bytes
    }

    /// Total number of (object, bucket) memberships: `n·L·r`. This, times
    /// the per-entry storage cost, dominates the on-storage index size.
    pub fn total_entries(&self) -> usize {
        self.tables
            .iter()
            .flat_map(|per_radius| per_radius.iter())
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{knn_search, SearchOptions};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn small_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::with_capacity(dim, n);
        let mut p = vec![0.0f32; dim];
        for _ in 0..n {
            for v in p.iter_mut() {
                *v = rng.gen::<f32>() * 20.0 - 10.0;
            }
            ds.push(&p);
        }
        ds
    }

    #[test]
    fn build_contains_every_object_in_every_table() {
        let ds = small_dataset(200, 8, 3);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let idx = MemIndex::build(&ds, &params, 11);
        for ri in 0..params.num_radii() {
            for li in 0..params.l {
                let total: usize = idx.buckets(ri, li).map(|(_, b)| b.len()).sum();
                assert_eq!(total, 200, "table ({ri},{li}) must hold all objects");
            }
        }
        assert_eq!(idx.total_entries(), 200 * params.l * params.num_radii());
    }

    #[test]
    fn identical_seeds_identical_indices() {
        let ds = small_dataset(100, 6, 5);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let a = MemIndex::build(&ds, &params, 7);
        let b = MemIndex::build(&ds, &params, 7);
        for ri in 0..params.num_radii() {
            for li in 0..params.l {
                let mut ka: Vec<_> = a.buckets(ri, li).map(|(k, v)| (*k, v.clone())).collect();
                let mut kb: Vec<_> = b.buckets(ri, li).map(|(k, v)| (*k, v.clone())).collect();
                ka.sort();
                kb.sort();
                assert_eq!(ka, kb);
            }
        }
    }

    #[test]
    fn query_finds_itself() {
        let ds = small_dataset(300, 10, 9);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 10);
        let idx = MemIndex::build(&ds, &params, 1);
        let mut found = 0;
        for qi in (0..300).step_by(17) {
            let q = ds.point(qi).to_vec();
            let (res, _) = knn_search(&idx, &ds, &q, 1, &SearchOptions::default());
            if !res.is_empty() && res[0].0 == qi as u32 {
                found += 1;
            }
        }
        // An exact-duplicate query collides at radius 1 in every table with
        // probability p1^m per table; with L tables per radius and radius
        // escalation it is found essentially always.
        assert!(found >= 16, "self-queries found: {found}/18");
    }

    #[test]
    fn index_bytes_positive_and_scales() {
        let ds = small_dataset(100, 6, 1);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let idx = MemIndex::build(&ds, &params, 1);
        let big = small_dataset(400, 6, 1);
        let params_big = E2lshParams::derive(big.len(), 2.0, 4.0, 1.0, big.max_abs_coord(), 6);
        let idx_big = MemIndex::build(&big, &params_big, 1);
        assert!(idx.index_bytes() > 0);
        assert!(idx_big.index_bytes() > idx.index_bytes());
    }
}
