//! # e2lsh-core
//!
//! Core primitives for E2LSH (Euclidean locality-sensitive hashing) as
//! introduced by Datar, Immorlica, Indyk and Mirrokni (SCG 2004) and used by
//! the EDBT 2023 paper *"Implementing and Evaluating E2LSH on Storage"*.
//!
//! The crate provides:
//!
//! * [`math`] — special functions (erf, normal CDF, incomplete gamma,
//!   chi-square CDF) needed for collision probabilities and baseline methods;
//! * [`distance`] — Euclidean distance kernels written so the compiler can
//!   auto-vectorize them (the paper uses AVX-512 kernels);
//! * [`dataset`] — a flat, cache-friendly container for `n` points of
//!   dimension `d`;
//! * [`lsh`] — p-stable hash functions `h(o) = ⌊(a·o + b)/w⌋`, compound
//!   hashes `g(o) = (h_1(o), …, h_m(o))`, and the 64/32-bit mixing used to
//!   address hash buckets;
//! * [`params`] — derivation of the E2LSH parameters `(m, L, S)` from
//!   Equation 5 of the paper, collision probability `p_w(s)`, and the radius
//!   schedule `R = 1, c, c², …`;
//! * [`index`] — an in-memory E2LSH index (the paper's "in-memory E2LSH"
//!   baseline and the reference implementation the storage engine mirrors);
//! * [`search`] — the `(R, c)`-NN radius-escalation driver that turns the
//!   index into a top-k `c`-ANNS structure, with detailed per-query
//!   statistics used by the paper's I/O-cost analysis (Section 4.3).
//!
//! ## Quick example
//!
//! ```
//! use e2lsh_core::dataset::Dataset;
//! use e2lsh_core::params::E2lshParams;
//! use e2lsh_core::index::MemIndex;
//! use e2lsh_core::search::{SearchOptions, knn_search};
//!
//! // A tiny random dataset.
//! let mut pts = Vec::new();
//! let mut state = 1u64;
//! for _ in 0..500 {
//!     let mut p = Vec::new();
//!     for _ in 0..16 {
//!         state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
//!         p.push(((state >> 33) as f32 / (1u64 << 31) as f32) * 10.0);
//!     }
//!     pts.push(p);
//! }
//! let ds = Dataset::from_rows(&pts);
//! let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim());
//! let index = MemIndex::build(&ds, &params, 42);
//! let q = ds.point(0).to_vec();
//! let (results, _stats) = knn_search(&index, &ds, &q, 1, &SearchOptions::default());
//! assert_eq!(results[0].0, 0); // the point itself is its own nearest neighbor
//! ```

pub mod dataset;
pub mod distance;
pub mod fxhash;
pub mod index;
pub mod lsh;
pub mod math;
pub mod params;
pub mod search;

pub use dataset::Dataset;
pub use index::MemIndex;
pub use params::E2lshParams;
pub use search::{knn_search, Neighbor, SearchOptions, SearchStats, TopK};
