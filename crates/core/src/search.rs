//! The `(R, c)`-NN radius-escalation ANNS driver (paper Section 2.3).
//!
//! For increasing radii `R = 1, c, c², …` the driver probes the `L` buckets
//! of the query at that radius, distance-checks the candidates (stopping at
//! the budget `S`), and stops as soon as the top-`k` heap holds `k` objects
//! within `c·R` — the `(R, c)`-NN success condition, giving `c²`-ANNS
//! overall.
//!
//! The driver also records the per-query statistics that power the paper's
//! analysis: how many radii were searched (Table 4's `r̄`), how many
//! non-empty buckets were probed (`N_IO,∞` = 2 × that, one hash-table read
//! plus one bucket read each), and per-bucket examined-entry counts (for
//! the finite-block-size I/O counts of Figure 3).

use crate::dataset::Dataset;
use crate::distance::dist2;
use crate::index::MemIndex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A search result: object ID and its Euclidean distance to the query.
pub type Neighbor = (u32, f32);

/// Knobs for a single query.
#[derive(Clone, Debug, Default)]
pub struct SearchOptions {
    /// Override the candidate budget `S` (default: `params.s_for_k(k)`).
    pub s_override: Option<usize>,
    /// Search at most this many radii (default: all).
    pub max_radii: Option<usize>,
    /// Record per-bucket examined-entry counts into
    /// [`SearchStats::bucket_examined`] (needed by the I/O-count analysis;
    /// off by default to keep queries allocation-free).
    pub collect_bucket_sizes: bool,
    /// Multi-probe extension (Lv et al., VLDB 2007; the E2LSHoS paper's
    /// conclusion names multi-probe-style methods as natural beneficiaries
    /// of fast storage): probe this many *additional* buckets per
    /// compound hash, chosen by flipping the hash component whose
    /// projection lies closest to its bucket boundary. 0 (default)
    /// disables and reproduces plain E2LSH.
    pub multi_probe: usize,
}

/// Per-query statistics (the measurable quantities of paper Section 4).
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Radii actually searched before the success condition fired.
    pub radii_searched: usize,
    /// Bucket probes issued (hash-table lookups), empty or not.
    pub buckets_probed: usize,
    /// Probes that hit a non-empty bucket. `N_IO,∞ = 2 ×` this value
    /// (one hash-table read + one bucket read per non-empty bucket).
    pub nonempty_buckets: usize,
    /// Candidate entries examined, counted with multiplicity (the quantity
    /// the budget `S` limits).
    pub candidates: usize,
    /// Distinct objects whose distance was computed.
    pub distance_computations: usize,
    /// Compound-hash evaluations performed (`L` per searched radius).
    pub hash_evaluations: usize,
    /// Per non-empty probed bucket: number of entries examined in it
    /// (possibly truncated by `S`). Only filled when
    /// [`SearchOptions::collect_bucket_sizes`] is set.
    pub bucket_examined: Vec<u32>,
}

impl SearchStats {
    /// Minimum I/O count with unbounded block size: one hash-table read and
    /// one bucket read per non-empty probed bucket (paper Table 4's
    /// `N_IO,∞`).
    pub fn n_io_inf(&self) -> usize {
        2 * self.nonempty_buckets
    }

    /// I/O count with a finite block holding `objs_per_block` object
    /// entries: one hash-table read plus `⌈examined/objs_per_block⌉` bucket
    /// block reads per non-empty bucket (paper Figure 3; the paper uses
    /// 4-byte entries, so `objs_per_block = B/4`).
    ///
    /// Requires the query to have been run with `collect_bucket_sizes`.
    pub fn n_io_block(&self, objs_per_block: usize) -> usize {
        assert!(objs_per_block > 0);
        self.bucket_examined
            .iter()
            .map(|&e| 1 + (e as usize).div_ceil(objs_per_block))
            .sum()
    }
}

/// Max-heap entry so `BinaryHeap` keeps the *k smallest* distances.
struct HeapItem {
    d2: f32,
    id: u32,
}

/// A bounded top-k accumulator over `(object id, squared distance)` pairs,
/// shared by the in-memory driver and the storage query engine.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapItem>,
}

impl TopK {
    /// Accumulator keeping the `k` smallest squared distances.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a candidate; returns true if it entered the top-k.
    pub fn offer(&mut self, id: u32, d2: f32) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(HeapItem { d2, id });
            true
        } else if let Some(top) = self.heap.peek() {
            if d2 < top.d2 {
                self.heap.pop();
                self.heap.push(HeapItem { d2, id });
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Number of candidates currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Squared distance of the current k-th best (∞ while under-full).
    pub fn worst_d2(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map(|h| h.d2).unwrap_or(f32::INFINITY)
        }
    }

    /// Extract `(id, distance)` pairs sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self
            .heap
            .into_sorted_vec()
            .into_iter()
            .map(|h| (h.id, h.d2.sqrt()))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
        v
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.d2 == other.d2 && self.id == other.id
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d2
            .partial_cmp(&other.d2)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

/// Top-`k` `c²`-ANNS against an in-memory index.
///
/// Returns up to `k` neighbors sorted by ascending distance, plus the
/// per-query [`SearchStats`].
pub fn knn_search(
    index: &MemIndex,
    dataset: &Dataset,
    query: &[f32],
    k: usize,
    opts: &SearchOptions,
) -> (Vec<Neighbor>, SearchStats) {
    assert_eq!(query.len(), dataset.dim());
    assert!(k >= 1);
    let params = index.params();
    let family = index.family();
    let budget = opts.s_override.unwrap_or_else(|| params.s_for_k(k));
    let num_radii = params.num_radii().min(opts.max_radii.unwrap_or(usize::MAX));

    let mut stats = SearchStats::default();
    let mut topk = TopK::new(k);
    // Stamp-based visited set: one u32 per object, no clearing between
    // queries of different radii.
    let mut seen = vec![0u32; dataset.len()];
    let stamp = 1u32;
    let mut scratch: Vec<i32> = Vec::new();
    let mut fracs: Vec<f32> = Vec::new();
    let mut perturbations: Vec<(f32, usize, i32)> = Vec::new();

    // Scan one bucket's candidates; returns false when the radius budget
    // is exhausted.
    macro_rules! scan_bucket {
        ($ri:expr, $li:expr, $key:expr, $examined:expr) => {{
            stats.buckets_probed += 1;
            if let Some(bucket) = index.bucket($ri, $li, $key) {
                stats.nonempty_buckets += 1;
                let mut examined_in_bucket = 0u32;
                for &oid in bucket {
                    if $examined >= budget {
                        break;
                    }
                    $examined += 1;
                    stats.candidates += 1;
                    examined_in_bucket += 1;
                    let idx = oid as usize;
                    if seen[idx] != stamp {
                        seen[idx] = stamp;
                        stats.distance_computations += 1;
                        let d2 = dist2(query, dataset.point(idx));
                        topk.offer(oid, d2);
                    }
                }
                if opts.collect_bucket_sizes && examined_in_bucket > 0 {
                    stats.bucket_examined.push(examined_in_bucket);
                }
            }
            $examined < budget
        }};
    }

    for ri in 0..num_radii {
        let radius = family.radius(ri);
        stats.radii_searched += 1;
        let mut examined_this_radius = 0usize;
        'radius: for li in 0..params.l {
            let compound = family.compound(ri, li);
            stats.hash_evaluations += 1;
            let key = if opts.multi_probe == 0 {
                compound.hash64(query, radius, &mut scratch)
            } else {
                compound.eval_with_frac(query, radius, &mut scratch, &mut fracs);
                crate::lsh::mix_hash_values(&scratch)
            };
            if !scan_bucket!(ri, li, key, examined_this_radius) {
                break 'radius;
            }
            // Multi-probe: flip the components whose projections sit
            // closest to a bucket boundary (single-perturbation set).
            if opts.multi_probe > 0 {
                perturbations.clear();
                for (j, &f) in fracs.iter().enumerate() {
                    perturbations.push((f * f, j, -1)); // cross left edge
                    let g = 1.0 - f;
                    perturbations.push((g * g, j, 1)); // cross right edge
                }
                perturbations.sort_by(|a, b| a.0.total_cmp(&b.0));
                for &(_, j, delta) in perturbations.iter().take(opts.multi_probe) {
                    scratch[j] += delta;
                    let pkey = crate::lsh::mix_hash_values(&scratch);
                    scratch[j] -= delta;
                    if !scan_bucket!(ri, li, pkey, examined_this_radius) {
                        break 'radius;
                    }
                }
            }
        }
        // (R, c)-NN success test: k results within c·R.
        let c_r = params.c * radius;
        let c_r2 = c_r * c_r;
        if topk.len() >= k && topk.worst_d2() <= c_r2 {
            break;
        }
    }

    (topk.into_sorted(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::E2lshParams;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::with_capacity(dim, n);
        let mut p = vec![0.0f32; dim];
        for _ in 0..n {
            for v in p.iter_mut() {
                *v = rng.gen::<f32>() * 10.0 - 5.0;
            }
            ds.push(&p);
        }
        ds
    }

    fn brute_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = (0..ds.len())
            .map(|i| (i as u32, dist2(q, ds.point(i)).sqrt()))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        all.truncate(k);
        all
    }

    fn build(ds: &Dataset) -> (MemIndex, E2lshParams) {
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), ds.dim());
        let idx = MemIndex::build(ds, &params, 42);
        (idx, params)
    }

    #[test]
    fn results_sorted_and_within_k() {
        let ds = dataset(500, 12, 1);
        let (idx, _) = build(&ds);
        let q = ds.point(3).to_vec();
        let (res, _) = knn_search(&idx, &ds, &q, 5, &SearchOptions::default());
        assert!(res.len() <= 5);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn approximation_guarantee_holds_empirically() {
        // c²-ANNS with c = 2: returned NN distance ≤ 4× exact NN distance
        // (holds with probability ≥ 1/2 − 1/e per radius; with the full
        // radius schedule the empirical success rate is much higher).
        let ds = dataset(800, 10, 2);
        let (idx, _) = build(&ds);
        let mut ok = 0;
        let total = 40;
        for t in 0..total {
            let q = ds.point(t * 7).iter().map(|v| v + 0.05).collect::<Vec<_>>();
            let exact = brute_knn(&ds, &q, 1)[0].1;
            let (res, _) = knn_search(&idx, &ds, &q, 1, &SearchOptions::default());
            if let Some(&(_, d)) = res.first() {
                if d <= 4.0 * exact.max(1e-6) {
                    ok += 1;
                }
            }
        }
        assert!(ok >= total * 8 / 10, "guarantee held for {ok}/{total}");
    }

    #[test]
    fn stats_are_consistent() {
        let ds = dataset(400, 8, 3);
        let (idx, params) = build(&ds);
        let q = ds.point(0).to_vec();
        let opts = SearchOptions {
            collect_bucket_sizes: true,
            ..Default::default()
        };
        let (_, stats) = knn_search(&idx, &ds, &q, 1, &opts);
        assert!(stats.radii_searched >= 1);
        assert!(stats.nonempty_buckets <= stats.buckets_probed);
        assert!(stats.distance_computations <= stats.candidates);
        assert_eq!(
            stats.hash_evaluations, stats.buckets_probed,
            "one hash eval per probe"
        );
        assert!(stats.buckets_probed <= stats.radii_searched * params.l);
        // Sum of per-bucket examined equals total candidates.
        let sum: u32 = stats.bucket_examined.iter().sum();
        assert_eq!(sum as usize, stats.candidates);
        // n_io with huge blocks equals n_io_inf.
        assert_eq!(stats.n_io_block(usize::MAX / 2), stats.n_io_inf());
        // Smaller blocks need at least as many I/Os.
        assert!(stats.n_io_block(4) >= stats.n_io_block(128));
    }

    #[test]
    fn budget_limits_candidates() {
        let ds = dataset(600, 8, 4);
        let (idx, _) = build(&ds);
        let q = ds.point(1).to_vec();
        let opts = SearchOptions {
            s_override: Some(10),
            ..Default::default()
        };
        let (_, stats) = knn_search(&idx, &ds, &q, 1, &opts);
        // Budget is per radius.
        assert!(stats.candidates <= 10 * stats.radii_searched);
    }

    #[test]
    fn max_radii_respected() {
        let ds = dataset(300, 8, 5);
        let (idx, _) = build(&ds);
        let q: Vec<f32> = vec![100.0; 8]; // far away, would escalate
        let opts = SearchOptions {
            max_radii: Some(2),
            ..Default::default()
        };
        let (_, stats) = knn_search(&idx, &ds, &q, 1, &opts);
        assert!(stats.radii_searched <= 2);
    }

    #[test]
    fn topk_more_results_than_top1() {
        let ds = dataset(1000, 10, 6);
        let (idx, _) = build(&ds);
        let q = ds.point(10).to_vec();
        let (r1, _) = knn_search(&idx, &ds, &q, 1, &SearchOptions::default());
        let (r10, _) = knn_search(&idx, &ds, &q, 10, &SearchOptions::default());
        assert!(r10.len() >= r1.len());
        // Top-1 of both should agree on distance ordering.
        if !r1.is_empty() && !r10.is_empty() {
            assert!(r10[0].1 <= r1[0].1 + 1e-5);
        }
    }
}
