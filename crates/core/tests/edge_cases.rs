//! Edge-case integration tests for the core E2LSH implementation.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::index::MemIndex;
use e2lsh_core::params::E2lshParams;
use e2lsh_core::search::{knn_search, SearchOptions};

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(
        ds.len(),
        2.0,
        4.0,
        1.0,
        ds.max_abs_coord().max(0.1),
        ds.dim(),
    )
}

#[test]
fn duplicate_points_all_indexable() {
    // 100 copies of the same point plus one outlier.
    let mut rows = vec![vec![1.0f32, 2.0, 3.0]; 100];
    rows.push(vec![50.0, 50.0, 50.0]);
    let ds = Dataset::from_rows(&rows);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 5);
    let (res, _) = knn_search(&idx, &ds, &[1.0, 2.0, 3.0], 5, &SearchOptions::default());
    assert!(!res.is_empty());
    // Every returned duplicate has distance 0.
    for &(id, d) in &res {
        if id != 100 {
            assert_eq!(d, 0.0);
        }
    }
}

#[test]
fn two_point_dataset() {
    let ds = Dataset::from_rows(&[vec![0.0f32, 0.0], vec![10.0, 10.0]]);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 1);
    let (res, _) = knn_search(&idx, &ds, &[0.1, 0.1], 2, &SearchOptions::default());
    assert!(!res.is_empty());
    assert_eq!(res[0].0, 0);
}

#[test]
fn k_exceeding_database_size() {
    let ds = Dataset::from_rows(&[vec![0.0f32], vec![1.0], vec![2.0]]);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 2);
    let (res, _) = knn_search(&idx, &ds, &[0.0], 10, &SearchOptions::default());
    assert!(res.len() <= 3);
}

#[test]
fn distant_query_escalates_radii_and_still_answers() {
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![(i % 20) as f32, (i / 20) as f32])
        .collect();
    let ds = Dataset::from_rows(&rows);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 3);
    // Query far outside the data extent: must escalate radii.
    let (res, stats) = knn_search(&idx, &ds, &[500.0, 500.0], 1, &SearchOptions::default());
    assert!(stats.radii_searched > 3, "radii {}", stats.radii_searched);
    // With the full schedule (R_max covers 2·x_max·√d) an answer should
    // usually be found; if not, the empty result is itself legal.
    if let Some(&(_, d)) = res.first() {
        assert!(d > 400.0);
    }
}

#[test]
fn negative_coordinates_work() {
    let rows: Vec<Vec<f32>> = (0..300)
        .map(|i| vec![-(i as f32) * 0.1, (i as f32) * 0.05 - 7.0])
        .collect();
    let ds = Dataset::from_rows(&rows);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 9);
    let q = ds.point(150).to_vec();
    let (res, _) = knn_search(&idx, &ds, &q, 1, &SearchOptions::default());
    assert_eq!(res[0].0, 150);
    assert_eq!(res[0].1, 0.0);
}

#[test]
fn zero_budget_returns_empty() {
    let ds = Dataset::from_rows(&[vec![0.0f32, 0.0], vec![1.0, 1.0]]);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 1);
    let opts = SearchOptions {
        s_override: Some(0),
        ..Default::default()
    };
    let (res, stats) = knn_search(&idx, &ds, &[0.0, 0.0], 1, &opts);
    assert!(res.is_empty());
    assert_eq!(stats.distance_computations, 0);
}

#[test]
fn high_dimensional_smoke() {
    // d = 960 (the paper's GIST dimensionality).
    let rows: Vec<Vec<f32>> = (0..100)
        .map(|i| (0..960).map(|j| ((i * 7 + j) % 13) as f32 * 0.1).collect())
        .collect();
    let ds = Dataset::from_rows(&rows);
    let params = params_for(&ds);
    let idx = MemIndex::build(&ds, &params, 4);
    let q = ds.point(42).to_vec();
    let (res, _) = knn_search(&idx, &ds, &q, 1, &SearchOptions::default());
    // The generator makes points with equal i mod 13 identical, so the
    // returned ID may be any of the duplicates — the distance must be 0.
    assert_eq!(res[0].1, 0.0);
}
