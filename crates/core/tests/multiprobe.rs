//! Multi-probe extension tests: probing perturbed buckets at fixed `L`
//! must find at least as many candidates and never hurt result quality —
//! the property that makes multi-probe-style methods attractive on fast
//! storage (E2LSHoS paper, Section 8).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::index::MemIndex;
use e2lsh_core::params::E2lshParams;
use e2lsh_core::search::{knn_search, SearchOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 3.0;
        }
        ds.push(&p);
    }
    ds
}

fn build(ds: &Dataset) -> MemIndex {
    // Deliberately few tables so plain E2LSH misses; multi-probe should
    // recover candidates from adjacent buckets.
    let params = E2lshParams::derive_with(
        ds.len(),
        2.0,
        2.0,
        1.0,
        ds.max_abs_coord(),
        ds.dim(),
        4.0,
        Some(4), // L = 4
    );
    MemIndex::build(ds, &params, 77)
}

#[test]
fn multiprobe_probes_more_buckets_and_finds_more() {
    let ds = clustered(3000, 16, 1);
    let idx = build(&ds);
    let q: Vec<f32> = ds.point(5).iter().map(|v| v + 0.4).collect();
    // Pin both searches to the same radius schedule so the candidate
    // sets are directly comparable (multi-probe can otherwise succeed at
    // an earlier radius and legitimately do *less* total work).
    let base = SearchOptions {
        max_radii: Some(1),
        ..Default::default()
    };
    let probe = SearchOptions {
        multi_probe: 4,
        max_radii: Some(1),
        ..Default::default()
    };
    let (_, s0) = knn_search(&idx, &ds, &q, 1, &base);
    let (_, s4) = knn_search(&idx, &ds, &q, 1, &probe);
    assert!(
        s4.buckets_probed > s0.buckets_probed,
        "{} vs {}",
        s4.buckets_probed,
        s0.buckets_probed
    );
    // At an identical radius schedule the multi-probe candidate set is a
    // superset of the plain one, so it can only distance-check more.
    assert!(
        s4.distance_computations >= s0.distance_computations,
        "{} vs {}",
        s4.distance_computations,
        s0.distance_computations
    );
}

#[test]
fn multiprobe_never_degrades_quality_and_usually_improves_recall() {
    let ds = clustered(4000, 16, 2);
    let idx = build(&ds);
    let mut base_better = 0;
    let mut probe_better = 0;
    for t in 0..30 {
        let q: Vec<f32> = ds.point(t * 100).iter().map(|v| v + 0.8).collect();
        let exact = {
            let mut best = f32::INFINITY;
            for i in 0..ds.len() {
                best = best.min(dist2(&q, ds.point(i)));
            }
            best.sqrt()
        };
        let run = |mp: usize| {
            let opts = SearchOptions {
                multi_probe: mp,
                // Stop radius escalation early so the per-radius recall
                // difference is visible.
                max_radii: Some(3),
                ..Default::default()
            };
            knn_search(&idx, &ds, &q, 1, &opts)
                .0
                .first()
                .map(|r| r.1)
                .unwrap_or(f32::INFINITY)
        };
        let d0 = run(0);
        let d6 = run(6);
        if d6 < d0 - 1e-5 {
            probe_better += 1;
        }
        if d0 < d6 - 1e-5 {
            base_better += 1;
        }
        // Multi-probe explores a superset of buckets per radius, but the
        // larger candidate pool may satisfy the (R,c)-NN stop condition
        // earlier; quality must stay within the same c-approximation.
        if d6.is_finite() {
            assert!(d6 <= (4.0 * exact).max(d0), "q{t}: {d6} vs exact {exact}");
        }
        let _ = exact;
    }
    assert!(
        probe_better >= base_better,
        "multi-probe should win at least as often: {probe_better} vs {base_better}"
    );
}

#[test]
fn zero_multiprobe_is_identical_to_plain() {
    let ds = clustered(1000, 8, 3);
    let idx = build(&ds);
    for t in 0..10 {
        let q = ds.point(t * 37).to_vec();
        let a = knn_search(&idx, &ds, &q, 3, &SearchOptions::default());
        let b = knn_search(
            &idx,
            &ds,
            &q,
            3,
            &SearchOptions {
                multi_probe: 0,
                ..Default::default()
            },
        );
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.buckets_probed, b.1.buckets_probed);
    }
}
