//! Property-based tests over the workspace's core data structures and
//! invariants (proptest).

use e2lshos::core::dataset::Dataset;
use e2lshos::core::lsh::mix_hash_values;
use e2lshos::core::params::collision_probability;
use e2lshos::core::search::TopK;
use e2lshos::datasets::metrics::{overall_ratio, recall};
use e2lshos::storage::layout::{split_hash, BucketBlock, EntryCodec, ENTRIES_PER_BLOCK};
use proptest::prelude::*;

proptest! {
    /// p_w(s) is a probability, monotone decreasing in s, increasing in w.
    #[test]
    fn collision_probability_laws(
        w in 0.1f64..50.0,
        s1 in 0.01f64..100.0,
        delta in 0.01f64..100.0,
    ) {
        let s2 = s1 + delta;
        let p1 = collision_probability(w, s1);
        let p2 = collision_probability(w, s2);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1 + 1e-12, "monotone in s: p({s1})={p1} p({s2})={p2}");
        let pw2 = collision_probability(w * 2.0, s1);
        prop_assert!(pw2 + 1e-12 >= p1, "monotone in w");
    }

    /// Bucket blocks round-trip any legal entry set.
    #[test]
    fn bucket_block_roundtrip(
        next in 0u64..u64::MAX / 2,
        ids in proptest::collection::vec(0u32..1_000_000, 0..=ENTRIES_PER_BLOCK),
        fp_seed in 0u32..u32::MAX,
    ) {
        let codec = EntryCodec::new(1_000_000, 18);
        let entries: Vec<(u32, u32)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, (fp_seed.wrapping_add(i as u32)) & codec.fp_mask()))
            .collect();
        let block = BucketBlock { next, entries };
        let mut buf = Vec::new();
        block.encode(&codec, &mut buf);
        prop_assert_eq!(buf.len(), e2lshos::storage::layout::BLOCK_SIZE);
        let back = BucketBlock::decode(&codec, &buf);
        prop_assert_eq!(back, block);
    }

    /// Splitting a hash into (table index, fingerprint) loses nothing.
    #[test]
    fn split_hash_reversible(h in 0u64..(1u64 << 32), u in 1u32..=32) {
        let (idx, fp) = split_hash(h, u);
        let rebuilt = if u == 64 { idx } else { ((fp as u64) << u) | idx };
        prop_assert_eq!(rebuilt, h);
    }

    /// TopK returns exactly the k smallest distances, sorted.
    #[test]
    fn topk_matches_sorting(
        d2s in proptest::collection::vec(0.0f32..1e6, 1..200),
        k in 1usize..20,
    ) {
        let mut topk = TopK::new(k);
        for (i, &d2) in d2s.iter().enumerate() {
            topk.offer(i as u32, d2);
        }
        let got = topk.into_sorted();
        let mut expect: Vec<f32> = d2s.iter().map(|d| d.sqrt()).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g.1 - e).abs() <= 1e-3 * (1.0 + e.abs()));
        }
    }

    /// Overall ratio ≥ 1, equals 1 on perfect results; recall ∈ [0, 1].
    #[test]
    fn metric_laws(
        dists in proptest::collection::vec(0.01f32..1e3, 1..30),
        k in 1usize..10,
    ) {
        let mut gt: Vec<(u32, f32)> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u32, d))
            .collect();
        gt.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let r = overall_ratio(&gt, &gt, k);
        prop_assert!((r - 1.0).abs() < 1e-9);
        let rec = recall(&gt, &gt, k);
        prop_assert!((rec - 1.0).abs() < 1e-9);
        // Degrade: double every distance (different ids).
        let worse: Vec<(u32, f32)> = gt
            .iter()
            .map(|&(id, d)| (id + 1000, d * 2.0))
            .collect();
        prop_assert!(overall_ratio(&worse, &gt, k) >= 1.0);
        prop_assert!(recall(&worse, &gt, k) <= 1.0);
    }

    /// Hash mixing: equal inputs collide, different inputs (almost) never.
    #[test]
    fn mix_is_deterministic_and_spread(
        a in proptest::collection::vec(-1000i32..1000, 1..16),
    ) {
        prop_assert_eq!(mix_hash_values(&a), mix_hash_values(&a));
        let mut b = a.clone();
        b[0] = b[0].wrapping_add(1);
        prop_assert_ne!(mix_hash_values(&a), mix_hash_values(&b));
    }

    /// Dataset prefix is a true prefix.
    #[test]
    fn dataset_prefix_props(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 4),
            1..50,
        ),
        take in 0usize..60,
    ) {
        let ds = Dataset::from_rows(&rows);
        let p = ds.prefix(take);
        prop_assert_eq!(p.len(), take.min(ds.len()));
        for i in 0..p.len() {
            prop_assert_eq!(p.point(i), ds.point(i));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulated device: completions never precede submissions, all I/Os
    /// complete, throughput never exceeds the profile's maximum.
    #[test]
    fn device_conservation(
        num_ios in 1usize..500,
        qd in 1usize..64,
    ) {
        use e2lshos::prelude::{Backing, DeviceProfile, SimStorage};
        use e2lshos::storage::device::{Device, IoRequest};
        let mut dev = SimStorage::new(
            DeviceProfile::CSSD,
            1,
            Backing::Mem(vec![0u8; 1 << 16]),
        );
        let mut now = 0.0f64;
        let mut done = 0usize;
        let mut submitted = 0usize;
        let mut out = Vec::new();
        while done < num_ios {
            while submitted - done < qd && submitted < num_ios {
                dev.submit(
                    IoRequest {
                        addr: (submitted as u64 * 512 * 7) % (1 << 16),
                        len: 512,
                        tag: submitted as u64,
                    },
                    now,
                );
                submitted += 1;
            }
            let t = dev.next_completion_time().expect("inflight");
            prop_assert!(t >= now - 1e-12, "completion {t} before now {now}");
            now = t;
            out.clear();
            dev.poll(now, &mut out);
            done += out.len();
        }
        prop_assert_eq!(done, num_ios);
        prop_assert_eq!(dev.inflight(), 0);
        let min_time = num_ios as f64 / (DeviceProfile::CSSD.max_kiops * 1e3);
        prop_assert!(now + 1e-9 >= min_time, "faster than the device allows");
    }
}
