//! Cross-crate integration tests: dataset suite → parameter derivation →
//! on-storage index → real-file asynchronous queries → accuracy metrics.

use e2lshos::baselines::srs::{Srs, SrsConfig};
use e2lshos::datasets::ground_truth::GroundTruth;
use e2lshos::datasets::metrics::overall_ratio;
use e2lshos::datasets::suite::{load_sized, DatasetId};
use e2lshos::prelude::*;

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("e2lshos-it-{}-{}", std::process::id(), name))
}

#[test]
fn full_pipeline_reaches_target_accuracy_on_real_io() {
    let named = load_sized(DatasetId::Sift, 8_000, 30);
    let (data, queries) = (named.data, named.queries);
    let gt = GroundTruth::compute(&data, &queries, 10);
    let params = E2lshParams::derive_practical(
        data.len(),
        2.0,
        2.0,
        0.6,
        0.3,
        data.max_abs_coord(),
        data.dim(),
    );
    let path = temp("pipeline.idx");
    build_index(&data, &params, &BuildConfig::default(), &path).unwrap();
    let mut dev = FileDevice::open(&path, 4).unwrap();
    let index = StorageIndex::open(&mut dev).unwrap();
    let mut cfg = EngineConfig::wall_clock(10);
    cfg.s_override = Some(16 * params.l);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);
    let mut ratios = 0.0;
    for (qi, out) in batch.outcomes.iter().enumerate() {
        ratios += overall_ratio(&out.neighbors, gt.neighbors(qi), 10);
    }
    let mean = ratios / queries.len() as f64;
    assert!(
        mean <= 1.10,
        "top-10 overall ratio through real file I/O: {mean}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn storage_and_memory_indices_agree_through_facade() {
    let named = load_sized(DatasetId::Glove, 4_000, 20);
    let (data, queries) = (named.data, named.queries);
    let params = E2lshParams::derive_practical(
        data.len(),
        2.0,
        2.0,
        0.7,
        0.3,
        data.max_abs_coord(),
        data.dim(),
    );
    let cfg_build = BuildConfig::default();
    let path = temp("agree.idx");
    build_index(&data, &params, &cfg_build, &path).unwrap();
    let mem = MemIndex::build(&data, &params, cfg_build.seed);

    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
    cfg.s_override = Some(1_000_000);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);

    let opts = SearchOptions {
        s_override: Some(1_000_000),
        ..Default::default()
    };
    let mut agree = 0;
    for qi in 0..queries.len() {
        let (mem_res, _) = knn_search(&mem, &data, queries.point(qi), 1, &opts);
        let disk = batch.outcomes[qi].neighbors.first().map(|r| r.1);
        let memd = mem_res.first().map(|r| r.1);
        match (memd, disk) {
            (Some(a), Some(b)) => {
                assert!(b <= a + 1e-4, "disk must never be worse: {b} vs {a}");
                if (a - b).abs() < 1e-4 {
                    agree += 1;
                }
            }
            (None, None) => agree += 1,
            other => panic!("presence mismatch: {other:?}"),
        }
    }
    assert!(agree >= queries.len() * 8 / 10, "agreement {agree}/20");
    std::fs::remove_file(&path).ok();
}

#[test]
fn methods_rank_consistently_on_an_easy_dataset() {
    // At equal (near-exact) accuracy on a small easy dataset, all methods
    // must return near-exact results; this guards the glue, not speed.
    let named = load_sized(DatasetId::Msong, 5_000, 15);
    let (data, queries) = (named.data, named.queries);
    let gt = GroundTruth::compute(&data, &queries, 1);

    let srs = Srs::build(
        &data,
        SrsConfig {
            early_stop: false,
            ..Default::default()
        },
    );
    let mut srs_ratio = 0.0;
    for qi in 0..queries.len() {
        let (res, _) = srs.query(&data, queries.point(qi), 1, Some(data.len() / 10));
        srs_ratio += overall_ratio(&res, gt.neighbors(qi), 1);
    }
    srs_ratio /= queries.len() as f64;
    assert!(srs_ratio < 1.05, "SRS ratio {srs_ratio}");

    let qalsh = e2lshos::baselines::qalsh::Qalsh::build(
        &data,
        e2lshos::baselines::qalsh::QalshConfig::default(),
    );
    let mut q_ratio = 0.0;
    for qi in 0..queries.len() {
        let (res, _) = qalsh.query(&data, queries.point(qi), 1);
        q_ratio += overall_ratio(&res, gt.neighbors(qi), 1);
    }
    q_ratio /= queries.len() as f64;
    assert!(q_ratio < 1.10, "QALSH ratio {q_ratio}");
}

#[test]
fn index_survives_reopen() {
    let named = load_sized(DatasetId::Rand, 3_000, 10);
    let (data, queries) = (named.data, named.queries);
    let params = E2lshParams::derive_practical(
        data.len(),
        2.0,
        2.0,
        0.8,
        0.3,
        data.max_abs_coord(),
        data.dim(),
    );
    let path = temp("reopen.idx");
    build_index(&data, &params, &BuildConfig::default(), &path).unwrap();

    let run_once = || {
        let mut dev = SimStorage::new(DeviceProfile::CSSD, 1, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let cfg = EngineConfig::simulated(Interface::IO_URING, 3);
        run_queries(&index, &data, &queries, &cfg, &mut dev)
            .outcomes
            .iter()
            .map(|o| o.neighbors.clone())
            .collect::<Vec<_>>()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "reopened index must answer identically");
    std::fs::remove_file(&path).ok();
}
