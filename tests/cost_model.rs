//! The analysis crate's Equation 7 must predict what the virtual-time
//! engine actually produces: the engine is a generalisation of the
//! asynchronous cost model, so on an I/O-bound configuration the batch
//! time should approach `N_IO · T_read`, and on a CPU-bound configuration
//! `T_compute + N_IO · T_request`.

use e2lshos::analysis::{CostInputs, QueryTimeModel};
use e2lshos::datasets::suite::{load_sized, DatasetId};
use e2lshos::prelude::*;

fn build(
    n: usize,
) -> (
    e2lshos::core::Dataset,
    e2lshos::core::Dataset,
    std::path::PathBuf,
) {
    let named = load_sized(DatasetId::Sift, n, 40);
    let params = E2lshParams::derive_practical(
        named.data.len(),
        2.0,
        2.0,
        0.7,
        0.3,
        named.data.max_abs_coord(),
        named.data.dim(),
    );
    let path =
        std::env::temp_dir().join(format!("e2lshos-costmodel-{}-{n}.idx", std::process::id()));
    build_index(&named.data, &params, &BuildConfig::default(), &path).unwrap();
    (named.data, named.queries, path)
}

#[test]
fn engine_matches_equation7_when_io_bound() {
    let (data, queries, path) = build(6_000);
    // Slow device, many contexts: the I/O pipeline dominates.
    let mut dev = SimStorage::new(DeviceProfile::CSSD, 1, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let cfg = EngineConfig::simulated(Interface::SPDK, 1);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);

    let n_io = batch.mean_n_io();
    let model = QueryTimeModel {
        t_request: Interface::SPDK.t_request,
        t_read: 1.0 / (DeviceProfile::CSSD.max_kiops * 1e3),
    };
    let inputs = CostInputs {
        t_compute: batch.cpu_compute / batch.outcomes.len() as f64,
        n_io,
    };
    let predicted = model.async_time(&inputs);
    let measured = batch.mean_query_time();
    let err = (measured - predicted).abs() / predicted;
    assert!(
        err < 0.25,
        "Eq. 7 prediction {predicted:.2e}s vs engine {measured:.2e}s (err {err:.2})"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn engine_matches_equation7_when_cpu_bound() {
    let (data, queries, path) = build(6_000);
    // Very fast array + heavyweight interface: the CPU side dominates.
    let mut dev = SimStorage::new(DeviceProfile::XLFDD, 8, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let cfg = EngineConfig::simulated(Interface::IO_URING, 1);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);

    let inputs = CostInputs {
        t_compute: batch.cpu_compute / batch.outcomes.len() as f64,
        n_io: batch.mean_n_io(),
    };
    let model = QueryTimeModel {
        t_request: Interface::IO_URING.t_request,
        t_read: 1.0 / (8.0 * DeviceProfile::XLFDD.max_kiops * 1e3),
    };
    let predicted = model.async_time(&inputs);
    let measured = batch.mean_query_time();
    let err = (measured - predicted).abs() / predicted;
    assert!(
        err < 0.25,
        "Eq. 7 prediction {predicted:.2e}s vs engine {measured:.2e}s (err {err:.2})"
    );
    // And the CPU side must be the binding term here.
    let cpu = inputs.t_compute + inputs.n_io * model.t_request;
    let io = inputs.n_io * model.t_read;
    assert!(cpu > io, "configuration should be CPU-bound: {cpu} vs {io}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn requirement_solver_roundtrip_through_engine() {
    // Derive the IOPS requirement for a target time from measured inputs
    // (Eq. 11), configure a synthetic device exactly at that requirement,
    // and verify the engine meets the target.
    let (data, queries, path) = build(6_000);
    let mut dev = SimStorage::new(DeviceProfile::XLFDD, 4, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let cfg = EngineConfig::simulated(Interface::XLFDD, 1);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);
    let n_io = batch.mean_n_io();
    let t_target = 2.0 * batch.mean_query_time();
    let req_iops = e2lshos::analysis::required_iops(n_io, t_target);
    // The XLFDD×4 array provides far more than required for 2× the time.
    assert!(
        4.0 * DeviceProfile::XLFDD.max_kiops * 1e3 > req_iops,
        "array {} must exceed requirement {req_iops}",
        4.0 * DeviceProfile::XLFDD.max_kiops * 1e3
    );
    std::fs::remove_file(&path).ok();
}
